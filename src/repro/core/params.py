"""Numeric parameters of ``ColorReduce`` / ``Partition``.

The paper fixes concrete exponents:

* the node/color hash functions map into ``l^0.1`` bins (the last bin
  receives no colors),
* the degree slack in the good-node condition is ``l^0.6``,
* the palette slack is ``l^0.7``,
* the next level's degree proxy is ``l' = l^0.9 - l^0.6``,
* a good bin has fewer than ``2 n_G l^-0.1 + n^0.6`` nodes,
* an instance of size ``O(n)`` is collected onto a single machine.

:class:`ColorReduceParameters` carries these, with two modes:

``paper mode`` (default)
    Exactly the exponents above.  On laptop-size graphs ``l^0.1`` is 1 or 2,
    so the recursion bottoms out immediately — the correct behaviour, but it
    does not exercise the recursive machinery.

``scaled mode`` (:meth:`ColorReduceParameters.scaled`)
    The number of bins and the slack terms are set explicitly so that
    multi-level recursion, palette splitting, leftover-bin coloring and
    bad-node handling all run on graphs with a few thousand nodes.  The
    control flow is identical; only the thresholds change.  DESIGN.md
    documents this as a substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.derand.conditional_expectation import SelectionStrategy
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ColorReduceParameters:
    """All numeric knobs of the partitioning recursion.

    Attributes
    ----------
    bin_exponent:
        Bins per level are ``floor(l ** bin_exponent)`` (paper: 0.1).
    degree_slack_exponent:
        The good-node degree condition allows deviation ``l ** 0.6``.
    palette_slack_exponent:
        The good-node palette condition requires surplus ``l ** 0.7``.
    ell_decay_exponent:
        ``l' = l ** 0.9 - l ** 0.6`` (paper: 0.9 with the 0.6 correction).
    bin_cap_slack_exponent:
        A good bin has fewer than ``2 n_G / B + n ** 0.6`` nodes (paper: 0.6,
        in terms of the global ``n``).
    collect_factor:
        Instances of size at most ``collect_factor * n`` (nodes + edges,
        ``n`` the *global* node count) are collected and colored locally —
        the paper's "size O(n)" base case.
    independence:
        The ``c``-wise independence of the hash families (even, >= 4).
    max_recursion_depth:
        Safety cap; Lemma 3.14 shows depth 9 suffices with paper exponents.
    num_bins_override:
        Scaled mode: use exactly this many bins per level regardless of ``l``.
    degree_slack_override / palette_slack_override / bin_cap_slack_override:
        Scaled mode: absolute slack values replacing the ``l ** e`` terms.
    min_ell:
        Recursion on a sub-instance stops refining ``l`` below this value.
    selection_strategy:
        How the hash pair is chosen (see :mod:`repro.derand`).
    selection_max_candidates / selection_chunk_bits / selection_batch_size:
        Knobs forwarded to :class:`repro.derand.HashPairSelector`.
    selection_use_batch:
        Score selection batches through the vectorized cost kernels
        (bit-identical outcomes; disable to force the scalar reference
        path, e.g. for benchmarking the kernels themselves).
    parallel_workers:
        Shard candidate-slab scoring across this many worker processes
        (:mod:`repro.parallel`): each selection batch / conditional-
        expectation chunk is split by the deterministic planner, scored by
        the workers through the same batched evaluator (shipped once per
        Partition level), and reduced positionally — selected seeds,
        recursion trees and colorings are bit-identical for every value.
        ``1`` (default) is the zero-overhead in-process path.
    parallel_max_retries / parallel_shard_timeout / parallel_breaker_threshold
    / parallel_breaker_cooldown:
        Self-healing knobs of the worker pool, forwarded as a
        :class:`repro.parallel.executor.RecoveryPolicy` (see
        :meth:`parallel_recovery_policy`): failed shard attempts tolerated
        before an in-process rescue, seconds to wait for one shard's reply,
        and the circuit breaker's consecutive-failure threshold and
        cool-down (slabs scored in-process before the pool is re-probed).
        All recovery is value-preserving — faults never change an outcome,
        only the :class:`repro.accounting.PoolHealth` record.  Ignored when
        ``parallel_workers == 1``.
    graph_use_batch:
        Route the graph-layer batch kernels: bin instances (and
        capacity-split pieces) materialise through the CSR-backed
        subgraph-extraction kernels (:func:`repro.graph.csr.split_by_bins` /
        :func:`repro.graph.csr.extract_induced`), the *selected* pair's
        final classification runs through
        :func:`repro.core.classification.classify_partition_batch`, the
        color-bin palette restriction through the vectorized
        :meth:`repro.graph.palettes.PaletteAssignment.restricted_by_bins`,
        and the ``ColorReduce`` endgame through the array-backed palette
        store — palette updates via
        :meth:`~repro.graph.palettes.PaletteAssignment.remove_colors_used_by_neighbors_batch`
        / the fused
        :meth:`~repro.graph.palettes.PaletteAssignment.subset_updated`,
        and the local base-case coloring via the array sweep of
        :func:`repro.core.local_coloring.greedy_list_coloring`
        (``use_batch``) — instead of the scalar per-neighbor/per-color
        Python loops.  Bit-identical outcomes — same node insertion order,
        same adjacency sets, same classifications, same colorings,
        ``removed`` counts and recursion trees; disable to force the
        scalar reference paths.
    enforce_palette_surplus:
        If True (default), any node whose restricted palette does not exceed
        its in-bin degree is reclassified as bad.  With the paper exponents
        this is implied by the invariant (Lemma 3.2); enforcing it explicitly
        keeps the scaled mode unconditionally correct.
    checkpoint_path / resume_path / checkpoint_every_levels:
        Run-level durability (:mod:`repro.runtime`): periodically write the
        completed-subtree frontier to ``checkpoint_path`` (atomic rename;
        flushed after every ``checkpoint_every_levels``-th recorded
        subtree), and/or resume a previous run from ``resume_path``
        (fingerprint-validated; the resumed run's coloring, recursion tree
        and ledger are bit-identical to an uninterrupted run's).  When only
        ``resume_path`` is set, new checkpoints keep updating that file.
    memory_budget_mb / deadline_seconds:
        Resource guardrails: a soft resident-set budget (degrade
        gracefully — drop the level prefetch, shrink buffers — then
        checkpoint and abort with a resumable
        :class:`~repro.errors.ResourceBudgetExceeded`) and a wall-clock
        watchdog with the same checkpoint-then-raise contract
        (:class:`~repro.errors.DeadlineExceededError`).
    """

    bin_exponent: float = 0.1
    degree_slack_exponent: float = 0.6
    palette_slack_exponent: float = 0.7
    ell_decay_exponent: float = 0.9
    bin_cap_slack_exponent: float = 0.6
    collect_factor: float = 4.0
    independence: int = 4
    max_recursion_depth: int = 12
    num_bins_override: Optional[int] = None
    degree_slack_override: Optional[float] = None
    palette_slack_override: Optional[float] = None
    bin_cap_slack_override: Optional[float] = None
    min_ell: int = 2
    selection_strategy: SelectionStrategy = SelectionStrategy.FIRST_FEASIBLE
    selection_max_candidates: int = 2048
    selection_chunk_bits: int = 4
    selection_batch_size: int = 16
    selection_rng_seed: int = 0
    selection_use_batch: bool = True
    parallel_workers: int = 1
    parallel_max_retries: int = 2
    parallel_shard_timeout: float = 30.0
    parallel_breaker_threshold: int = 3
    parallel_breaker_cooldown: int = 8
    parallel_transport: str = "shm"
    parallel_min_slab_pairs: Optional[int] = None
    graph_use_batch: bool = True
    #: Score all sibling bins' head candidate batches in one segmented
    #: cross-bin pass per recursion level (:mod:`repro.core.level`) instead
    #: of one per-bin probe each; bit-identical outcomes either way.  Only
    #: engaged when the batch layers it rides on are also enabled
    #: (``graph_use_batch``, ``selection_use_batch``, single-process
    #: selection, FIRST_FEASIBLE).
    level_use_batch: bool = True
    enforce_palette_surplus: bool = True
    checkpoint_path: Optional[str] = None
    resume_path: Optional[str] = None
    checkpoint_every_levels: int = 1
    memory_budget_mb: Optional[float] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.bin_exponent < 1.0:
            raise ConfigurationError("bin_exponent must be in (0, 1)")
        if self.independence < 4 or self.independence % 2 != 0:
            raise ConfigurationError("independence must be an even integer >= 4")
        if self.collect_factor <= 0:
            raise ConfigurationError("collect_factor must be positive")
        if self.max_recursion_depth < 1:
            raise ConfigurationError("max_recursion_depth must be positive")
        if self.num_bins_override is not None and self.num_bins_override < 2:
            raise ConfigurationError("num_bins_override must be at least 2")
        if self.min_ell < 1:
            raise ConfigurationError("min_ell must be at least 1")
        if self.parallel_workers < 1:
            raise ConfigurationError("parallel_workers must be at least 1")
        if self.parallel_max_retries < 0:
            raise ConfigurationError("parallel_max_retries must be >= 0")
        if self.parallel_shard_timeout <= 0:
            raise ConfigurationError("parallel_shard_timeout must be positive")
        if self.parallel_breaker_threshold < 1:
            raise ConfigurationError("parallel_breaker_threshold must be >= 1")
        if self.parallel_breaker_cooldown < 1:
            raise ConfigurationError("parallel_breaker_cooldown must be >= 1")
        if self.parallel_transport not in ("shm", "pickle"):
            raise ConfigurationError(
                "parallel_transport must be 'shm' or 'pickle'"
            )
        if self.parallel_min_slab_pairs is not None and self.parallel_min_slab_pairs < 0:
            raise ConfigurationError("parallel_min_slab_pairs must be >= 0")
        _validate_durability(self)

    def durability_enabled(self) -> bool:
        """Whether any run-level durability knob is set (:mod:`repro.runtime`)."""
        return _durability_enabled(self)

    # ------------------------------------------------------------------
    # alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides) -> "ColorReduceParameters":
        """The paper's exact exponents (the default construction)."""
        return cls(**overrides)

    @classmethod
    def scaled(
        cls,
        num_bins: int,
        *,
        degree_slack: Optional[float] = None,
        palette_slack: Optional[float] = None,
        bin_cap_slack: Optional[float] = None,
        collect_factor: float = 1.5,
        **overrides,
    ) -> "ColorReduceParameters":
        """Parameters that exercise multi-level recursion on small graphs.

        ``num_bins`` fixes the per-level bin count (the paper's ``l^0.1``).
        The slack overrides replace the ``l^0.6`` / ``l^0.7`` / ``n^0.6``
        terms; when omitted, concentration-scale defaults are used (a few
        standard deviations of the corresponding binomial), which keeps the
        good-node conditions satisfiable on graphs with a few hundred to a
        few thousand nodes.
        """
        return cls(
            num_bins_override=num_bins,
            degree_slack_override=degree_slack,
            palette_slack_override=palette_slack,
            bin_cap_slack_override=bin_cap_slack,
            collect_factor=collect_factor,
            **overrides,
        )

    def with_strategy(self, strategy: SelectionStrategy) -> "ColorReduceParameters":
        """A copy using a different hash-selection strategy."""
        return replace(self, selection_strategy=strategy)

    def parallel_recovery_policy(self):
        """The pool's :class:`repro.parallel.executor.RecoveryPolicy`, or
        ``None`` when ``parallel_workers == 1`` (the in-process path never
        imports the parallel package)."""
        if self.parallel_workers < 2:
            return None
        from repro.parallel.executor import RecoveryPolicy

        return RecoveryPolicy(
            max_shard_retries=self.parallel_max_retries,
            shard_timeout=self.parallel_shard_timeout,
            breaker_threshold=self.parallel_breaker_threshold,
            breaker_cooldown=self.parallel_breaker_cooldown,
        )

    @property
    def is_scaled(self) -> bool:
        """Whether any paper exponent has been replaced by an explicit value."""
        return any(
            override is not None
            for override in (
                self.num_bins_override,
                self.degree_slack_override,
                self.palette_slack_override,
                self.bin_cap_slack_override,
            )
        )

    # ------------------------------------------------------------------
    # derived per-level quantities
    # ------------------------------------------------------------------
    def num_bins(self, ell: float) -> int:
        """Number of bins ``B`` at degree proxy ``l`` (paper: ``l^0.1``).

        ``Partition`` needs at least 2 bins (one color bin plus the leftover
        bin); with fewer the caller should have collected the instance
        instead, but we clamp to 2 so the function is total.

        In scaled mode the bin count is additionally capped at ``l^(1/3)``:
        the palette-splitting analysis needs the per-bin palette share
        ``p/B ~ l/B`` to dominate its standard deviation and the ``p/B(B-1)``
        margin, which requires ``l`` to be at least on the order of ``B^3`` —
        a relation the paper's ``B = l^0.1`` satisfies automatically.
        """
        if self.num_bins_override is not None:
            return max(2, min(self.num_bins_override, int(math.floor(ell ** (1.0 / 3.0)))))
        return max(2, int(math.floor(ell**self.bin_exponent)))

    def degree_slack(self, ell: float) -> float:
        """The additive degree slack in Definition 3.1 (paper: ``l^0.6``).

        Scaled mode without an explicit override uses three standard
        deviations of the in-bin degree (a binomial with mean ``l / B``),
        which is the quantity the ``l^0.6`` term dominates in the paper's
        regime.
        """
        if self.degree_slack_override is not None:
            return self.degree_slack_override
        if self.num_bins_override is not None:
            bins = self.num_bins_override
            return 3.0 * math.sqrt(max(ell, 1.0) / bins) + 1.0
        return ell**self.degree_slack_exponent

    def palette_slack(self, ell: float) -> float:
        """The additive palette surplus in Definition 3.1 (paper: ``l^0.7``).

        In scaled mode the surplus must stay below the
        ``p / (B (B - 1))`` margin between the expected in-bin palette size
        (colors are spread over ``B - 1`` bins) and the ``p / B`` reference
        in the good-node condition; a constant 1 keeps the condition
        satisfiable while still demanding a strict surplus.
        """
        if self.palette_slack_override is not None:
            return self.palette_slack_override
        if self.num_bins_override is not None:
            return 1.0
        return ell**self.palette_slack_exponent

    def bin_cap(self, ell: float, instance_nodes: int, global_nodes: int) -> float:
        """The good-bin size cap: ``2 n_G / B + n^0.6`` (Definition 3.1)."""
        bins = self.num_bins(ell)
        if self.bin_cap_slack_override is not None:
            slack = self.bin_cap_slack_override
        elif self.num_bins_override is not None:
            slack = 4.0 * math.sqrt(max(instance_nodes, 1) / bins) + 1.0
        else:
            slack = global_nodes**self.bin_cap_slack_exponent
        return 2.0 * instance_nodes / bins + slack

    def bins_are_clamped(self, ell: float) -> bool:
        """Whether ``floor(l^0.1)`` fell below 2 and was clamped (paper mode).

        The paper assumes ``l`` is at least a large constant, so ``l^0.1``
        bins are meaningful; on laptop-scale degrees the exponent yields a
        single bin and the implementation clamps to 2.  Downstream code uses
        this flag to know the literal Lemma 3.2/3.11 arithmetic does not
        apply at this level.
        """
        if self.num_bins_override is not None:
            return False
        return int(math.floor(ell**self.bin_exponent)) < 2

    def next_ell(self, ell: float) -> float:
        """The next level's degree proxy ``l'``.

        Paper mode with unclamped bins: the literal ``l' = l^0.9 - l^0.6``
        (note ``l^0.9 = l / l^0.1``).  Scaled mode, or paper mode with the
        bin count clamped to 2: the same structural quantity ``l / B`` minus
        the degree slack.
        """
        bins = self.num_bins(ell)
        if self.num_bins_override is None and not self.bins_are_clamped(ell):
            candidate = ell**self.ell_decay_exponent - ell**self.degree_slack_exponent
        else:
            candidate = ell / bins - self.degree_slack(ell)
        return max(float(self.min_ell), candidate)

    def collect_threshold(self, global_nodes: int) -> int:
        """Instances of size (nodes + edges) at most this are colored locally."""
        return int(self.collect_factor * max(global_nodes, 1))

    def cost_target(self, ell: float, global_nodes: int) -> float:
        """Lemma 3.9's achievable cost bound ``n / l^2`` for hash selection.

        In scaled mode (small ``l``) the literal ``n / l^2`` can be smaller
        than 1 even though a handful of bad nodes is harmless and expected;
        we therefore never require a bound below ``max(4, n / l^2)`` there.
        """
        literal = global_nodes / max(ell, 1.0) ** 2
        if self.is_scaled or self.bins_are_clamped(ell):
            # Scaled mode, or paper mode once the bin count has been clamped
            # to 2 (laptop-scale degrees): the literal Definition 3.1
            # conditions are tighter than the analysis assumes, so a small
            # fraction of structurally-bad nodes is tolerated; they are
            # deferred to G_0 exactly like probabilistically-bad nodes.
            return max(4.0, 0.01 * global_nodes, literal)
        return max(1.0, literal)


def _validate_durability(params) -> None:
    """Shared ``__post_init__`` checks of the durability knobs (both param
    sets carry the same five fields; see :mod:`repro.runtime`)."""
    if params.checkpoint_every_levels < 1:
        raise ConfigurationError("checkpoint_every_levels must be at least 1")
    if params.memory_budget_mb is not None and params.memory_budget_mb <= 0:
        raise ConfigurationError("memory_budget_mb must be positive")
    if params.deadline_seconds is not None and params.deadline_seconds <= 0:
        raise ConfigurationError("deadline_seconds must be positive")
    if params.checkpoint_path is not None and not str(params.checkpoint_path).strip():
        raise ConfigurationError("checkpoint_path must not be empty")
    if params.resume_path is not None and not str(params.resume_path).strip():
        raise ConfigurationError("resume_path must not be empty")


def _durability_enabled(params) -> bool:
    return any(
        getattr(params, knob) is not None
        for knob in (
            "checkpoint_path",
            "resume_path",
            "memory_budget_mb",
            "deadline_seconds",
        )
    )
