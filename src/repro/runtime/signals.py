"""Signal-safe shutdown for durable runs.

A :class:`SignalWatcher` swaps lightweight SIGTERM/SIGINT handlers in for
the duration of one run.  The handler only *records* the signal — all real
work (finishing the in-flight recursion level, writing the final
checkpoint, draining the worker pool, unlinking shared-memory segments)
happens at the next guard poll on the main thread, where it is safe.  The
previous handlers are restored when the run ends, so nested or subsequent
runs and the surrounding application see exactly the disposition they
installed.

Handlers can only be installed from the main thread (a CPython
restriction); elsewhere the watcher stays dormant and the process keeps
its default signal behaviour.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, Optional


class SignalWatcher:
    """Record SIGTERM/SIGINT; the durable run acts on them at poll points."""

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self) -> None:
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}
        self._installed = False

    def install(self) -> bool:
        """Install the recording handlers; ``False`` off the main thread."""
        if threading.current_thread() is not threading.main_thread():
            return False
        for signum in self.SIGNALS:
            self._previous[signum] = signal.signal(signum, self._handle)
        self._installed = True
        return True

    def restore(self) -> None:
        """Put the previous handlers back (idempotent)."""
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass
        self._previous.clear()
        self._installed = False

    def _handle(self, signum, frame) -> None:  # pragma: no cover - async
        self.signum = signum
