"""Checkpoint files for durable ``ColorReduce`` runs.

The recursion of both drivers is a depth-first walk whose every call is
identified by a *positional salt* (:func:`repro.core.level.child_salt`):
the root is salt 1 and a child's salt is a pure function of its parent's
salt and its bin ordinal.  A subtree's entire computation — candidate
enumeration, selections, classifications, colorings — is therefore
reproducible in isolation, which reduces checkpoint/resume to *salt-keyed
memoization*:

* while running, every **completed** subtree at shallow depth (at most
  :data:`CHECKPOINT_RECORD_DEPTH`) is recorded: its coloring, its merged
  :class:`~repro.accounting.CostLedger`, its recursion-tree node and its
  contribution to the run counters.  When a parent completes, the entries
  of its descendants are pruned (the parent's entry subsumes them), so the
  frontier stays small;
* on resume, the drivers replay the same deterministic walk; whenever a
  call's salt has a recorded entry, the stored results are returned
  without recomputing, and everything *not* recorded is recomputed
  bit-identically.  The resumed run's coloring, recursion tree and ledger
  are exactly those of an uninterrupted run.

File format: ``MAGIC``, a fixed header (sha256 digest + length of the
payload), then the pickled payload (fingerprint header + entries).  The
digest is verified *before* unpickling, so a truncated or corrupted file
is rejected with :class:`~repro.errors.CheckpointError` instead of feeding
garbage to ``pickle``.  Writes go to ``<path>.tmp`` and are renamed into
place (atomic on POSIX), so the file on disk is always a complete,
verifiable checkpoint; a stale ``.tmp`` left by a SIGKILL mid-write is
removed by the next write or load.

Fingerprints: a checkpoint is only valid for the exact run that produced
it.  The header binds the algorithm name, a parameter fingerprint (every
field of the parameter set *except* the durability knobs themselves — you
may resume with a different budget or checkpoint cadence, but not with a
different seed, strategy or batch routing), an instance fingerprint (graph
CSR content + palette contents) and the run's global node count.  A
mismatch on resume is a :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import struct
from dataclasses import fields
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import CheckpointError, ConfigurationError

#: File magic of every checkpoint (version byte included).
MAGIC = b"REPROCKPT\x01"

#: Fixed-size header after the magic: payload sha256 digest + length.
_HEADER = struct.Struct("<32sQ")

#: Subtrees completing at depth <= this are recorded into the frontier.
#: Deeper completions are folded into their (recorded) ancestors, keeping
#: the entry count bounded by ~bins^depth while still losing at most one
#: depth-3 subtree of work on a kill.
CHECKPOINT_RECORD_DEPTH = 3

#: Parameter fields that do NOT participate in the fingerprint: resuming
#: with a different checkpoint path, cadence, budget or deadline is the
#: whole point; everything else must match bit-for-bit.
DURABILITY_FIELDS = frozenset(
    {
        "checkpoint_path",
        "resume_path",
        "checkpoint_every_levels",
        "memory_budget_mb",
        "deadline_seconds",
    }
)

#: Test hook: when set to ``N``, the process SIGKILLs itself immediately
#: after the ``N``-th checkpoint write — a deterministic "host died at a
#: level boundary" for the chaos suite.
KILL_AFTER_CHECKPOINTS_ENV = "REPRO_TEST_KILL_AFTER_CHECKPOINTS"


# --------------------------------------------------------------------------
# fingerprints
# --------------------------------------------------------------------------
def fingerprint_params(params: Any) -> str:
    """sha256 over every non-durability field of a parameter dataclass."""
    items = [("__params__", type(params).__name__)]
    for spec in fields(params):
        if spec.name in DURABILITY_FIELDS:
            continue
        items.append((spec.name, repr(getattr(params, spec.name))))
    return hashlib.sha256(repr(sorted(items)).encode("utf-8")).hexdigest()


def fingerprint_instance(graph: Any, palettes: Any) -> str:
    """sha256 over the instance content: CSR arrays + palette entries.

    Both runs of a resume pair construct the graph and palettes the same
    way (same workload/seed or same edge-list file), so hashing the CSR
    view and the flat palette store is canonical between them.  Palettes
    whose colors exceed int64 (no array store) fall back to a scalar sweep.
    """
    import numpy as np

    h = hashlib.sha256()
    csr = graph.csr()
    h.update(np.asarray(csr.node_ids, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    store = palettes.store()
    if store is not None:
        h.update(np.asarray(store.nodes, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(store.offsets).tobytes())
        h.update(np.ascontiguousarray(store.flat).tobytes())
    else:  # pragma: no cover - exotic (non-int64) color universes
        for node in sorted(graph.nodes()):
            h.update(repr((node, sorted(palettes.palette(node)))).encode("utf-8"))
    return h.hexdigest()


def run_header(
    algorithm: str, params: Any, graph: Any, palettes: Any, global_nodes: int
) -> Dict[str, Any]:
    """The fingerprint header binding a checkpoint to one exact run."""
    return {
        "format": 1,
        "algorithm": algorithm,
        "params": fingerprint_params(params),
        "instance": fingerprint_instance(graph, palettes),
        "global_nodes": int(global_nodes),
    }


def validate_header(
    recorded: Dict[str, Any], expected: Dict[str, Any], path: str
) -> None:
    """Reject a resume against a run the checkpoint was not recorded for."""
    mismatched = [
        key
        for key in ("format", "algorithm", "params", "instance", "global_nodes")
        if recorded.get(key) != expected.get(key)
    ]
    if mismatched:
        raise ConfigurationError(
            f"checkpoint {path} was recorded for a different run "
            f"(mismatched: {', '.join(mismatched)}); --resume requires the "
            "same graph, palettes and non-durability parameters"
        )


# --------------------------------------------------------------------------
# codec
# --------------------------------------------------------------------------
def write_checkpoint(path: str, payload: Dict[str, Any]) -> int:
    """Atomically write ``payload`` to ``path``; returns the payload size."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).digest()
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_HEADER.pack(digest, len(blob)))
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(blob)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and verify one checkpoint file.

    Raises :class:`~repro.errors.CheckpointError` for anything that is not
    a complete, digest-verified checkpoint; the digest is checked before
    ``pickle`` ever sees the bytes.  Removes a stale ``<path>.tmp`` left by
    a write that was killed before its rename.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        os.unlink(f"{path}.tmp")
    except OSError:
        pass
    if not data.startswith(MAGIC):
        raise CheckpointError(
            f"{path} is not a repro checkpoint (bad or missing magic)"
        )
    body = data[len(MAGIC):]
    if len(body) < _HEADER.size:
        raise CheckpointError(f"{path} is truncated (incomplete header)")
    digest, length = _HEADER.unpack_from(body, 0)
    blob = body[_HEADER.size:]
    if len(blob) != length:
        raise CheckpointError(
            f"{path} is truncated ({len(blob)} payload bytes, expected {length})"
        )
    if hashlib.sha256(blob).digest() != digest:
        raise CheckpointError(f"{path} is corrupt (payload digest mismatch)")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # pragma: no cover - digest already vouched
        raise CheckpointError(f"{path} cannot be decoded: {exc}") from exc
    if not isinstance(payload, dict) or "header" not in payload or "entries" not in payload:
        raise CheckpointError(f"{path} has an unexpected payload layout")
    return payload


# --------------------------------------------------------------------------
# the frontier
# --------------------------------------------------------------------------
class CheckpointManager:
    """Salt-keyed frontier of completed subtrees, flushed atomically.

    ``entries`` maps a call's positional salt to a dict with keys
    ``depth``, ``ancestors`` (the salts on the path from the root,
    exclusive), ``coloring``, ``ledger`` (a :class:`CostLedger` copy),
    ``tree`` (the subtree's recursion node) and the run-counter deltas
    (``bad_nodes``, ``violations``).  ``path`` may be ``None`` — the
    frontier is then kept in memory only (a guard abort still raises, just
    without a resumable file).
    """

    def __init__(
        self,
        path: Optional[str],
        header: Dict[str, Any],
        entries: Optional[Dict[int, Dict[str, Any]]] = None,
        every: int = 1,
        record_depth: int = CHECKPOINT_RECORD_DEPTH,
        telemetry: Any = None,
    ) -> None:
        self.path = path
        self.header = header
        self.entries: Dict[int, Dict[str, Any]] = dict(entries or {})
        self.record_depth = record_depth
        self._every = max(1, int(every))
        self._pending = 0
        self._written = 0
        self._telemetry = telemetry

    # -- restore -------------------------------------------------------
    def has(self, salt: int) -> bool:
        return salt in self.entries

    def restored(self, salt: int) -> Optional[Dict[str, Any]]:
        """The recorded entry for ``salt``, if its subtree already ran."""
        return self.entries.get(salt)

    # -- record --------------------------------------------------------
    def record(
        self, salt: int, depth: int, ancestors: Tuple[int, ...], build_entry
    ) -> bool:
        """Record one completed subtree (``build_entry`` is called lazily).

        Entries of descendants are pruned — the new entry subsumes them —
        and the file is flushed once ``checkpoint_every_levels`` recordings
        have accumulated.
        """
        if depth > self.record_depth:
            return False
        for key in [k for k, e in self.entries.items() if salt in e["ancestors"]]:
            del self.entries[key]
        entry = build_entry()
        entry["depth"] = depth
        entry["ancestors"] = tuple(ancestors)
        self.entries[salt] = entry
        self._pending += 1
        if self._telemetry is not None:
            self._telemetry.bump("subtrees_recorded")
        if self._pending >= self._every:
            self.flush()
        return True

    # -- flush ---------------------------------------------------------
    def flush(self, force: bool = False) -> bool:
        """Write the frontier if anything changed (or ``force``)."""
        if self.path is None:
            self._pending = 0
            return False
        if self._pending == 0 and not force:
            return False
        size = write_checkpoint(
            self.path, {"header": self.header, "entries": self.entries}
        )
        self._pending = 0
        self._written += 1
        if self._telemetry is not None:
            self._telemetry.bump("checkpoints_written")
            self._telemetry.checkpoint_bytes = size
        self._maybe_kill_for_test()
        return True

    def _maybe_kill_for_test(self) -> None:
        raw = os.environ.get(KILL_AFTER_CHECKPOINTS_ENV)
        if raw and self._written >= int(raw):
            os.kill(os.getpid(), signal.SIGKILL)


def resume_entries(
    path: str, expected_header: Dict[str, Any]
) -> Dict[int, Dict[str, Any]]:
    """Load, validate and return the frontier of a checkpoint to resume."""
    payload = load_checkpoint(path)
    validate_header(payload["header"], expected_header, path)
    return payload["entries"]
