"""Resource guardrails: soft RSS budget and wall-clock deadline.

A :class:`ResourceGuard` is polled at recursion boundaries (every
``_color_reduce`` entry and the ``Partition`` phase boundaries).  The
deadline check is a cheap monotonic-clock comparison and runs on every
poll; RSS sampling reads ``/proc/self/status`` and is throttled to at most
once per :data:`POLL_INTERVAL_SECONDS`.

The memory budget degrades *gracefully* before it aborts:

1. at 80 % of the budget the cross-bin level prefetch is disabled (it
   fronts an entire level's candidate scores — the largest transient
   allocations the drivers make by choice);
2. at 90 % the buffers shrink: the worker pools are drained (freeing the
   worker processes' slab buffers and the parent-owned shared-memory
   segments — the pool respawns on demand, bit-identically, exactly as
   after a crash) and a full garbage collection runs;
3. at 100 % the run checkpoints and aborts with a *resumable*
   :class:`~repro.errors.ResourceBudgetExceeded` — a controlled stop at a
   recursion boundary instead of an uncontrolled OOM kill mid-allocation.

The watchdog aborts with :class:`~repro.errors.DeadlineExceededError`
under the same checkpoint-then-raise contract.  Neither abort ever loses
the run: resuming from the written checkpoint continues bit-identically.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Optional

from repro.errors import DeadlineExceededError, ResourceBudgetExceeded

#: Minimum seconds between two RSS samples (reading /proc is ~microseconds,
#: but recursion boundaries can be hit thousands of times per second).
POLL_INTERVAL_SECONDS = 0.1

#: The degradation rungs, as fractions of the memory budget.
PREFETCH_OFF_FRACTION = 0.8
SHRINK_FRACTION = 0.9


def current_rss_mb() -> Optional[float]:
    """This process's resident set in MiB, or ``None`` off-Linux.

    Reads ``VmRSS`` from ``/proc/self/status`` (kB).  Platforms without
    procfs return ``None`` and the memory guard stays dormant (the
    deadline watchdog is clock-based and unaffected).
    """
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:  # pragma: no cover - no procfs
        return None
    return None  # pragma: no cover - VmRSS absent


class ResourceGuard:
    """Budget/deadline watchdog polled by a :class:`DurableRun`.

    ``rss_reader`` and ``clock`` are injectable for tests; the defaults
    read procfs and the monotonic clock.
    """

    def __init__(
        self,
        memory_budget_mb: Optional[float] = None,
        deadline_seconds: Optional[float] = None,
        rss_reader: Callable[[], Optional[float]] = current_rss_mb,
        clock: Callable[[], float] = time.monotonic,
        poll_interval: float = POLL_INTERVAL_SECONDS,
    ) -> None:
        self.memory_budget_mb = memory_budget_mb
        self.deadline_seconds = deadline_seconds
        self._rss_reader = rss_reader
        self._clock = clock
        self._poll_interval = poll_interval
        self._started = clock()
        self._next_sample = self._started
        self._shrunk = False

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    def poll(self, run) -> None:
        """One guard check; ``run`` is the owning ``DurableRun``."""
        now = self._clock()
        if (
            self.deadline_seconds is not None
            and now - self._started > self.deadline_seconds
        ):
            run.abort(
                DeadlineExceededError(
                    f"run exceeded its {self.deadline_seconds:g}s deadline "
                    f"({now - self._started:.1f}s elapsed)"
                )
            )
        if self.memory_budget_mb is None or now < self._next_sample:
            return
        self._next_sample = now + self._poll_interval
        rss = self._rss_reader()
        if rss is None:
            return
        run.telemetry.bump("guard_polls")
        run.telemetry.observe_rss(rss)
        budget = self.memory_budget_mb
        if rss >= budget:
            run.abort(
                ResourceBudgetExceeded(
                    f"resident set {rss:.0f} MiB reached the {budget:g} MiB "
                    "budget after graceful degradation"
                )
            )
        elif rss >= SHRINK_FRACTION * budget:
            if run.prefetch_allowed:
                run.disable_prefetch()
            if not self._shrunk:
                self._shrunk = True
                self._shrink_buffers(run)
        elif rss >= PREFETCH_OFF_FRACTION * budget and run.prefetch_allowed:
            run.disable_prefetch()

    @staticmethod
    def _shrink_buffers(run) -> None:
        """Rung 2: drain the worker pools and collect garbage."""
        run.telemetry.bump("buffer_shrinks")
        try:
            from repro.parallel.executor import shutdown_executors

            shutdown_executors()
        except Exception:  # pragma: no cover - pool teardown is best-effort
            pass
        gc.collect()
