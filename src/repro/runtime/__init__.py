"""Run-level durability: checkpoint/resume, guardrails, signal shutdown.

* :mod:`repro.runtime.checkpoint` — atomic, fingerprint-bound checkpoint
  files holding the salt-keyed frontier of completed recursion subtrees;
* :mod:`repro.runtime.guard` — soft RSS budget with a graceful degradation
  ladder, plus a wall-clock deadline watchdog;
* :mod:`repro.runtime.signals` — SIGTERM/SIGINT recording handlers;
* :mod:`repro.runtime.durability` — the :class:`DurableRun` facade both
  drivers thread through their recursion.

The subsystem is opt-in (any of ``checkpoint_path`` / ``resume_path`` /
``memory_budget_mb`` / ``deadline_seconds`` on the parameter sets) and
outcome-neutral: a resumed, degraded or repeatedly checkpointed run
produces the bit-identical coloring, recursion tree and ledger of an
uninterrupted one.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_RECORD_DEPTH,
    CheckpointManager,
    fingerprint_instance,
    fingerprint_params,
    load_checkpoint,
    run_header,
    validate_header,
    write_checkpoint,
)
from repro.runtime.durability import DurableRun
from repro.runtime.guard import ResourceGuard, current_rss_mb
from repro.runtime.signals import SignalWatcher

__all__ = [
    "CHECKPOINT_RECORD_DEPTH",
    "CheckpointManager",
    "DurableRun",
    "ResourceGuard",
    "SignalWatcher",
    "current_rss_mb",
    "fingerprint_instance",
    "fingerprint_params",
    "load_checkpoint",
    "run_header",
    "validate_header",
    "write_checkpoint",
]
