"""``DurableRun`` — the run-level durability facade the drivers thread.

One object per run bundles the three durability concerns:

* a :class:`~repro.runtime.checkpoint.CheckpointManager` holding the
  salt-keyed frontier of completed subtrees (resume restores from it,
  completion records into it);
* a :class:`~repro.runtime.guard.ResourceGuard` (RSS budget + deadline);
* a :class:`~repro.runtime.signals.SignalWatcher` (SIGTERM/SIGINT).

The drivers call :meth:`poll` at every recursion entry (and forward it to
``Partition``'s phase boundaries), :meth:`restored`/:meth:`completed`
around each call body, and wrap the whole walk in :meth:`active`.  All
aborts funnel through :meth:`abort`: final checkpoint, pool drain,
shared-memory unlink, then the typed :class:`~repro.errors.RunAbortedError`
subclass — a controlled stop at a recursion boundary, always resumable
when a checkpoint path is configured.
"""

from __future__ import annotations

import contextlib
import signal as _signal
import threading
from typing import Any, Dict, Optional, Tuple

from repro.accounting import RunDurability
from repro.errors import RunAbortedError, RunInterrupted
from repro.runtime.checkpoint import (
    CheckpointManager,
    resume_entries,
    run_header,
)
from repro.runtime.guard import ResourceGuard
from repro.runtime.signals import SignalWatcher


#: Thread-local supervision slot (see :func:`supervised`).  The service
#: layer's job executor runs each driver call inside ``supervised(...)``;
#: the slot is thread-local so concurrent jobs on different executor
#: threads each see only their own supervisor.
_SUPERVISION = threading.local()


@contextlib.contextmanager
def supervised(supervisor):
    """Run a driver under an external *supervisor* (the service job layer).

    A supervisor is duck-typed with three members:

    * ``watcher`` — a :class:`~repro.runtime.signals.SignalWatcher`-shaped
      object (``install()``/``restore()``/``signum``) the
      :class:`DurableRun` polls instead of installing real signal
      handlers.  Setting ``signum`` from another thread cancels the run at
      its next poll point, with the full shutdown contract (final
      checkpoint, pool drain, shm unlink) — a *cooperative* SIGINT that
      works off the main thread;
    * ``attach(run)`` — called with the freshly built :class:`DurableRun`
      so the supervisor can read live telemetry while the run executes;
    * ``on_subtree(manager, depth)`` — called after every completed (or
      restored) subtree recording, the driver's natural progress tick.

    The drivers themselves are oblivious: :meth:`DurableRun.from_params`
    picks the supervisor up from this thread-local slot, so no driver
    signature changes and runs outside ``supervised(...)`` behave exactly
    as before.
    """
    previous = getattr(_SUPERVISION, "current", None)
    _SUPERVISION.current = supervisor
    try:
        yield supervisor
    finally:
        _SUPERVISION.current = previous


def current_supervisor():
    """The supervisor of the calling thread's ``supervised`` block, if any."""
    return getattr(_SUPERVISION, "current", None)


class DurableRun:
    """Durability state threaded through one driver run via ``_RunState``."""

    def __init__(
        self,
        manager: CheckpointManager,
        guard: ResourceGuard,
        watcher: Optional[SignalWatcher] = None,
        telemetry: Optional[RunDurability] = None,
    ) -> None:
        self.manager = manager
        self.guard = guard
        self.watcher = watcher if watcher is not None else SignalWatcher()
        self.telemetry = telemetry if telemetry is not None else RunDurability()
        if manager is not None and manager._telemetry is None:
            manager._telemetry = self.telemetry
        self.prefetch_allowed = True
        self.supervisor = None
        self._stack: list = []

    # ------------------------------------------------------------------
    @classmethod
    def from_params(
        cls, params: Any, algorithm: str, graph: Any, palettes: Any, global_nodes: int
    ) -> Optional["DurableRun"]:
        """Build the run's durability state, or ``None`` when no knob is set."""
        if not params.durability_enabled():
            return None
        header = run_header(algorithm, params, graph, palettes, global_nodes)
        entries: Dict[int, Dict[str, Any]] = {}
        if params.resume_path:
            entries = resume_entries(params.resume_path, header)
        path = params.checkpoint_path or params.resume_path
        telemetry = RunDurability()
        manager = CheckpointManager(
            path,
            header,
            entries=entries,
            every=params.checkpoint_every_levels,
            telemetry=telemetry,
        )
        guard = ResourceGuard(
            memory_budget_mb=params.memory_budget_mb,
            deadline_seconds=params.deadline_seconds,
        )
        supervisor = current_supervisor()
        watcher = getattr(supervisor, "watcher", None)
        run = cls(manager, guard, watcher=watcher, telemetry=telemetry)
        if supervisor is not None:
            run.supervisor = supervisor
            supervisor.attach(run)
        return run

    # ------------------------------------------------------------------
    # the driver-facing surface
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def active(self):
        """Install signal handlers for the walk; flush + restore after."""
        self.watcher.install()
        try:
            yield self
        finally:
            self.watcher.restore()
            self.manager.flush()

    def poll(self) -> None:
        """One durability check; called at recursion/phase boundaries.

        May raise a :class:`~repro.errors.RunAbortedError` subclass (after
        checkpointing and cleaning up) — never returns abnormally
        otherwise.
        """
        signum = self.watcher.signum
        if signum is not None:
            name = _signal.Signals(signum).name
            self.abort(
                RunInterrupted(
                    f"run interrupted by {name} after finishing the in-flight "
                    "level",
                    signum=signum,
                )
            )
        self.guard.poll(self)

    def restored(self, salt: int) -> Optional[Dict[str, Any]]:
        """The recorded entry for this call, if resuming past it."""
        entry = self.manager.restored(salt)
        if entry is not None:
            self.telemetry.bump("subtrees_restored")
            self.telemetry.bump("nodes_restored", len(entry["coloring"]))
            if self.supervisor is not None:
                self.supervisor.on_subtree(self.manager, entry["depth"])
        return entry

    def has(self, salt: int) -> bool:
        """Whether ``salt`` will be restored (prefetch skips such bins)."""
        return self.manager.has(salt)

    def enter(self, salt: int) -> None:
        self._stack.append(salt)

    def exit(self, salt: int) -> None:
        popped = self._stack.pop()
        assert popped == salt, "unbalanced durable recursion tracking"

    def completed(self, salt: int, depth: int, build_entry) -> None:
        """Record one completed subtree (after :meth:`exit`)."""
        recorded = self.manager.record(salt, depth, tuple(self._stack), build_entry)
        if recorded and self.supervisor is not None:
            self.supervisor.on_subtree(self.manager, depth)

    def disable_prefetch(self) -> None:
        """Degradation rung 1: no more cross-bin level prefetches."""
        if self.prefetch_allowed:
            self.prefetch_allowed = False
            self.telemetry.bump("prefetch_disabled")

    # ------------------------------------------------------------------
    # the one-way exit
    # ------------------------------------------------------------------
    def abort(self, error: RunAbortedError) -> None:
        """Checkpoint, drain the pool, unlink shm, then raise ``error``."""
        self.manager.flush(force=self.manager.path is not None)
        error.checkpoint_path = self.manager.path
        try:
            import sys

            if "repro.parallel.executor" in sys.modules:
                from repro.parallel.executor import shutdown_executors

                shutdown_executors()
            if "repro.parallel.slabs" in sys.modules:
                from repro.parallel.slabs import unlink_all_segments

                unlink_all_segments()
        except Exception:  # pragma: no cover - cleanup is best-effort
            pass
        raise error


def restored_ancestors(entries: Dict[int, Dict[str, Any]]) -> Tuple[int, ...]:
    """All salts appearing as ancestors across a frontier (diagnostics)."""
    seen = set()
    for entry in entries.values():
        seen.update(entry["ancestors"])
    return tuple(sorted(seen))
