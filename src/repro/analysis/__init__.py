"""Analysis utilities: run metrics, closed-form bounds and report formatting."""

from repro.analysis.metrics import ColoringRunMetrics, collect_metrics
from repro.analysis.reporting import Table, format_table
from repro.analysis.theory import prior_work_round_bounds

__all__ = [
    "ColoringRunMetrics",
    "collect_metrics",
    "Table",
    "format_table",
    "prior_work_round_bounds",
]
