"""Plain-text table formatting shared by benchmarks and EXPERIMENTS.md.

The experiments print their results as fixed-width text tables so the
benchmark output (``bench_output.txt``) is directly readable and can be
pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


@dataclass
class Table:
    """A titled table with named columns and homogeneous rows."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_dict_row(self, row: Dict[str, object]) -> None:
        self.add_row(*(row.get(column, "-") for column in self.columns))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return format_table(self)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a :class:`Table` as fixed-width text."""
    header = [str(column) for column in table.columns]
    body = [[_cell(value) for value in row] for row in table.rows]
    widths = [len(column) for column in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Iterable[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [table.title, "=" * len(table.title), render_row(header)]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in body)
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
