"""Analytic complexity facts quoted by the paper (Section 1.3 comparison).

The paper's "evaluation" is a comparison of round complexities against prior
work; this module encodes that comparison so the E4 experiment can print it
next to the measured round counts of the implementable baselines.  The
closed-form recursion bounds (Lemmas 3.11-3.14) live in
:mod:`repro.core.recursion`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.recursion import (  # re-exported for convenience
    bin_size_upper_bound,
    closed_form_table,
    degree_upper_bound,
    depth_nine_size_ratio,
    ell_bounds,
    nodes_upper_bound,
)

__all__ = [
    "PriorWorkBound",
    "prior_work_round_bounds",
    "evaluate_round_bound",
    "bin_size_upper_bound",
    "closed_form_table",
    "degree_upper_bound",
    "depth_nine_size_ratio",
    "ell_bounds",
    "nodes_upper_bound",
]


@dataclass(frozen=True)
class PriorWorkBound:
    """One row of the Section 1.3 comparison."""

    reference: str
    model: str
    deterministic: bool
    problem: str
    round_bound: str


def prior_work_round_bounds() -> List[PriorWorkBound]:
    """The prior-work comparison the paper's introduction lays out."""
    return [
        PriorWorkBound(
            reference="Parter (ICALP'18)",
            model="CONGESTED CLIQUE",
            deterministic=False,
            problem="(Δ+1)-coloring",
            round_bound="O(log log Δ · log* Δ)",
        ),
        PriorWorkBound(
            reference="Parter, Su (DISC'18)",
            model="CONGESTED CLIQUE",
            deterministic=False,
            problem="(Δ+1)-coloring",
            round_bound="O(log* Δ)",
        ),
        PriorWorkBound(
            reference="Chang et al. (PODC'19)",
            model="CONGESTED CLIQUE",
            deterministic=False,
            problem="(Δ+1)-list coloring",
            round_bound="O(1)",
        ),
        PriorWorkBound(
            reference="Censor-Hillel et al. (DISC'17)",
            model="CONGESTED CLIQUE (Δ = O(n^{1/3}))",
            deterministic=True,
            problem="(Δ+1)-coloring",
            round_bound="O(log Δ)",
        ),
        PriorWorkBound(
            reference="Parter (ICALP'18)",
            model="CONGESTED CLIQUE",
            deterministic=True,
            problem="(Δ+1)-coloring",
            round_bound="O(log Δ)",
        ),
        PriorWorkBound(
            reference="Bamberger et al. (PODC'20)",
            model="CONGESTED CLIQUE",
            deterministic=True,
            problem="(deg+1)-list coloring",
            round_bound="O(log Δ · log log Δ)",
        ),
        PriorWorkBound(
            reference="This paper (Theorem 1.1)",
            model="CONGESTED CLIQUE",
            deterministic=True,
            problem="(Δ+1)-list coloring",
            round_bound="O(1)",
        ),
        PriorWorkBound(
            reference="This paper (Theorem 1.4)",
            model="low-space MPC",
            deterministic=True,
            problem="(deg+1)-list coloring",
            round_bound="O(log Δ + log log n)",
        ),
    ]


def evaluate_round_bound(expression: str, delta: float, n: float) -> float:
    """Numeric value of a round-bound expression for plotting reference curves.

    Supports the handful of expressions in :func:`prior_work_round_bounds`;
    unknown expressions evaluate to ``nan`` (they are still printed as text).
    """
    log2 = lambda x: math.log2(max(x, 2.0))  # noqa: E731
    log_star = lambda x: _log_star(max(x, 2.0))  # noqa: E731
    table = {
        "O(1)": 1.0,
        "O(log Δ)": log2(delta),
        "O(log* Δ)": log_star(delta),
        "O(log log Δ · log* Δ)": log2(log2(delta)) * log_star(delta),
        "O(log Δ · log log Δ)": log2(delta) * log2(log2(delta)),
        "O(log Δ + log log n)": log2(delta) + log2(log2(n)),
    }
    return table.get(expression, float("nan"))


def _log_star(value: float) -> float:
    count = 0
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return float(count)
