"""Uniform metrics extracted from algorithm runs (used by experiments)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.color_reduce import ColorReduceResult
from repro.core.recursion import summarize_recursion
from repro.graph.graph import Graph
from repro.graph.validation import count_colors_used


@dataclass
class ColoringRunMetrics:
    """The quantities every coloring experiment reports for one run."""

    algorithm: str
    num_nodes: int
    num_edges: int
    max_degree: int
    rounds: int
    colors_used: int
    recursion_depth: Optional[int] = None
    num_partitions: Optional[int] = None
    num_local_colorings: Optional[int] = None
    total_bad_nodes: Optional[int] = None
    invariant_violations: Optional[int] = None
    message_words: Optional[int] = None

    def as_row(self) -> Dict[str, object]:
        """A flat dict suitable for table formatting."""
        return {
            "algorithm": self.algorithm,
            "n": self.num_nodes,
            "m": self.num_edges,
            "Delta": self.max_degree,
            "rounds": self.rounds,
            "colors": self.colors_used,
            "depth": self.recursion_depth if self.recursion_depth is not None else "-",
            "partitions": self.num_partitions if self.num_partitions is not None else "-",
            "bad_nodes": self.total_bad_nodes if self.total_bad_nodes is not None else "-",
        }


def collect_metrics(
    graph: Graph, result: ColorReduceResult, algorithm: str = "ColorReduce"
) -> ColoringRunMetrics:
    """Extract the standard metrics from a ``ColorReduce`` result."""
    summary = summarize_recursion(result.recursion_root)
    return ColoringRunMetrics(
        algorithm=algorithm,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        rounds=result.rounds,
        colors_used=count_colors_used(result.coloring),
        recursion_depth=summary.max_depth,
        num_partitions=summary.partitions,
        num_local_colorings=summary.base_cases,
        total_bad_nodes=summary.total_bad_nodes,
        invariant_violations=result.total_invariant_violations,
        message_words=result.ledger.message_words,
    )
