"""Graph substrate: data structures, palettes, generators and validation.

The paper's algorithms operate on an undirected simple graph together with a
per-node color palette.  This subpackage provides:

* :class:`repro.graph.graph.Graph` — an adjacency-set graph with the
  operations the algorithms need (induced subgraphs, degrees, size),
* :mod:`repro.graph.csr` — a cached array ("CSR") view of a graph used by
  the batched cost kernels (in-bin degrees and bin sizes as
  ``np.bincount``/scatter operations) and by the vectorized
  subgraph-extraction layer,
* :class:`repro.graph.palettes.PaletteAssignment` — per-node palettes with
  the restriction/removal operations used by ``Partition`` and the
  palette-update steps of ``ColorReduce``,
* :mod:`repro.graph.generators` — synthetic workload generators,
* :mod:`repro.graph.validation` — proper/list-coloring validation.

The array-view contract, in brief (details in :mod:`repro.graph.csr`):
``Graph.csr()`` builds the view lazily and caches it; ``add_node`` /
``add_edge`` invalidate it (``_csr = None``), and the next ``csr()`` call
rebuilds from the live adjacency sets.  The batched cost evaluators warm
the view as a side effect of hash-pair selection; ``induced_subgraph`` /
``induced_subgraphs`` / ``subgraph_degrees_within`` / ``relabeled`` then
route through it (``use_csr=None`` means "iff warm"; the partition
pipelines pass their ``graph_use_batch`` flag explicitly).  Children
produced by the CSR path carry their own canonical warm view and
materialise their adjacency sets lazily on first set-based access; both
extraction paths yield the same node insertion order and the same
adjacency sets, so every downstream outcome — colorings, recursion trees,
selected seeds — is bit-identical between them.
"""

from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.graph.validation import (
    assert_proper_coloring,
    assert_valid_list_coloring,
    is_proper_coloring,
    is_valid_list_coloring,
)

__all__ = [
    "Graph",
    "PaletteAssignment",
    "assert_proper_coloring",
    "assert_valid_list_coloring",
    "is_proper_coloring",
    "is_valid_list_coloring",
]
