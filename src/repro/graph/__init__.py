"""Graph substrate: data structures, palettes, generators and validation.

The paper's algorithms operate on an undirected simple graph together with a
per-node color palette.  This subpackage provides:

* :class:`repro.graph.graph.Graph` — an adjacency-set graph with the
  operations the algorithms need (induced subgraphs, degrees, size),
* :mod:`repro.graph.csr` — a cached array ("CSR") view of a graph used by
  the batched cost kernels (in-bin degrees and bin sizes as
  ``np.bincount``/scatter operations),
* :class:`repro.graph.palettes.PaletteAssignment` — per-node palettes with
  the restriction/removal operations used by ``Partition`` and the
  palette-update steps of ``ColorReduce``,
* :mod:`repro.graph.generators` — synthetic workload generators,
* :mod:`repro.graph.validation` — proper/list-coloring validation.
"""

from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.graph.validation import (
    assert_proper_coloring,
    assert_valid_list_coloring,
    is_proper_coloring,
    is_valid_list_coloring,
)

__all__ = [
    "Graph",
    "PaletteAssignment",
    "assert_proper_coloring",
    "assert_valid_list_coloring",
    "is_proper_coloring",
    "is_valid_list_coloring",
]
