"""Per-node color palettes for (Δ+1)-, (Δ+1)-list- and (deg+1)-list-coloring.

The paper distinguishes three problem variants (Section 1):

* ``(Δ+1)-coloring`` — every palette is ``{0, ..., Δ}``,
* ``(Δ+1)-list coloring`` — each node has an arbitrary palette of Δ+1 colors,
* ``(deg+1)-list coloring`` — node ``v`` has an arbitrary palette of
  ``deg(v)+1`` colors.

:class:`PaletteAssignment` stores palettes in one (or both) of two backings
that mirror the graph layer's adjacency-sets / CSR-view split:

* **Python sets** — the model-faithful, mutable reference representation
  (each node holds its own palette locally; storage is never shared
  between nodes),
* **an array store** (:class:`_PaletteStore`) — one flat int64 color array
  holding every palette back to back (sorted ascending within each node's
  slice) plus a ``(n + 1,)`` offsets array, exactly the layout the batched
  kernels already emit internally.

The store is built lazily from the sets on the first :meth:`store` call
and cached; scalar mutation invalidates it.  Conversely, assignments
produced by the batch kernels (:meth:`restricted_by_bins`, :meth:`subset`
on an array-backed parent, the fused classification path) carry *only*
their arrays — often plain slices of the parent's flat store — and
materialise Python sets on the first genuinely set-based access, just like
CSR-extracted graphs materialise adjacency lazily.  Every public operation
answers from whichever backing is available, with identical results.

On top of it the class provides exactly the operations the algorithms
perform:

* restriction to the colors a hash function maps to a given bin
  (``Partition`` / ``LowSpacePartition``) — per bin via
  :meth:`PaletteAssignment.restricted_to`, or for a whole partition level
  at once via the vectorized
  :meth:`PaletteAssignment.restricted_by_bins`,
* removal of colors already used by colored neighbors (the two
  "update color palettes" steps in ``ColorReduce``) — scalar reference
  :meth:`remove_colors_used_by_neighbors` and the vectorized
  :meth:`remove_colors_used_by_neighbors_batch` (one CSR gather plus one
  segmented-membership mark plus one masked compaction),
* size queries ``p(v)`` used by the good/bad node classification.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.errors import PaletteError
from repro.graph.graph import Graph
from repro.types import Color, ColoringMap, NodeId


def color_bins_of_entries(np, universe, universe_bins, flat_colors):
    """Color bin of every flattened palette entry (one gather).

    ``universe`` is the *sorted* color universe (``(U,)`` int64) and
    ``universe_bins`` the aligned bin of each universe color; the result is
    ``universe_bins[position_of(color)]`` for every entry of
    ``flat_colors``.  When the universe is (nearly) contiguous — the common
    ``{0..Δ}``-style instance — a direct lookup table replaces the
    ``searchsorted``.  Shared by the batched classification kernels
    (:mod:`repro.core.classification`,
    :mod:`repro.core.low_space.machine_sets`), whose flattened entries are
    guaranteed to lie in the universe; entries outside it land on arbitrary
    bins (:meth:`PaletteAssignment.restricted_by_bins` validates membership
    explicitly instead, reusing its own lookup).
    """
    size = universe.shape[0]
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    base = int(universe[0])
    span = int(universe[-1]) - base + 1
    if span <= 4 * size + 64:
        table = np.zeros(span, dtype=np.int64)
        table[universe - base] = universe_bins
        clipped = np.clip(flat_colors - base, 0, span - 1)
        return table[clipped]
    positions = np.searchsorted(universe, flat_colors)
    return universe_bins[np.minimum(positions, size - 1)]


class _PaletteStore:
    """Immutable flat-array palette store (see the module docstring).

    ``nodes[i]``'s palette is ``flat[offsets[i]:offsets[i + 1]]``, sorted
    ascending.  The node→row index, the sorted color universe and the
    universe position of every entry are derived lazily and cached — the
    latter two are exactly the static arrays the batched cost evaluators
    need (:meth:`repro.hashing.batch.BatchCostEvaluatorBase.palette_entry_arrays`),
    so flattening is paid once per assignment, not once per ``Partition``
    call.  Stores are never mutated in place: the pruning kernel swaps in a
    freshly compacted store, which is why children and copies may share a
    parent's store (or slices of its arrays) safely.
    """

    __slots__ = (
        "nodes", "flat", "offsets",
        "_index", "_universe", "_positions", "_entry_rows", "_frame",
    )

    def __init__(self, nodes: List[NodeId], flat: np.ndarray, offsets: np.ndarray) -> None:
        self.nodes = nodes
        self.flat = flat
        self.offsets = offsets
        self._index: Optional[Dict[NodeId, int]] = None
        self._universe: Optional[np.ndarray] = None
        self._positions: Optional[np.ndarray] = None
        self._entry_rows: Optional[np.ndarray] = None
        self._frame = None

    @property
    def index(self) -> Dict[NodeId, int]:
        """``index[node] == i`` iff ``nodes[i] == node`` (cached)."""
        mapping = self._index
        if mapping is None:
            mapping = {node: row for row, node in enumerate(self.nodes)}
            self._index = mapping
        return mapping

    def rows_of(self, node_list: Sequence[NodeId]) -> np.ndarray:
        """Store rows of ``node_list``; :class:`PaletteError` on a miss."""
        index = self.index
        try:
            return np.fromiter(
                (index[node] for node in node_list),
                dtype=np.int64,
                count=len(node_list),
            )
        except KeyError as exc:
            raise PaletteError(f"node {exc.args[0]} has no palette") from exc

    def row_slice(self, row: int) -> np.ndarray:
        """The (sorted) palette slice of store row ``row`` — a view."""
        return self.flat[self.offsets[row] : self.offsets[row + 1]]

    def sizes(self) -> np.ndarray:
        """Per-row palette sizes, aligned with :attr:`nodes`."""
        return self.offsets[1:] - self.offsets[:-1]

    def entry_rows(self) -> np.ndarray:
        """The owning row of every flat entry (cached ``repeat`` expansion)."""
        cached = self._entry_rows
        if cached is None:
            cached = np.repeat(
                np.arange(len(self.nodes), dtype=np.int64), self.sizes()
            )
            self._entry_rows = cached
        return cached

    def universe(self) -> np.ndarray:
        """Sorted unique colors over all rows (cached)."""
        cached = self._universe
        if cached is None:
            cached = np.unique(self.flat)
            self._universe = cached
        return cached

    def universe_positions(self):
        """``(universe, positions)``: each entry's index in the universe."""
        positions = self._positions
        if positions is None:
            positions = np.searchsorted(self.universe(), self.flat)
            self._positions = positions
        return self._universe, positions

    def membership_frame(self):
        """``(frame_colors, entry_positions)`` in a shared sorted frame.

        The frame is any sorted color array containing every entry (an
        ancestor's universe, usually): enough for membership tests, *not*
        the store's exact universe — :meth:`universe` stays authoritative
        for universe-sensitive consumers (hash domains, selection).
        Children built by the batch kernels inherit slices of their
        parent's frame, so the pruning kernel's table path never
        recomputes positions down a recursion branch.  Returns ``None``
        when no frame was inherited and the exact positions are not cached
        either (the kernel then uses the frame-free searchsorted path).
        """
        if self._frame is not None:
            return self._frame
        if self._positions is not None:
            return self._universe, self._positions
        return None


#: Sentinel cached when the palette colors cannot be represented as int64
#: (so repeated ``store()`` calls do not retry the failing conversion).
_STORE_UNAVAILABLE = object()


def _coloring_arrays(csr, coloring: ColoringMap):
    """``coloring`` as (graph positions, int64 colors) arrays, or ``None``.

    Shared ingestion for the pruning kernels: keys outside the graph are
    dropped, and a ``None`` return (colors or ids beyond int64) tells the
    caller to fall back to its scalar reference.
    """
    import numpy as np

    try:
        if csr.ids_are_positions:
            keys = np.fromiter(coloring.keys(), dtype=np.int64, count=len(coloring))
            values = np.fromiter(coloring.values(), dtype=np.int64, count=len(coloring))
            inside = (keys >= 0) & (keys < csr.num_nodes)
            return keys[inside], values[inside]
        position = csr.position
        positions_list: List[int] = []
        values_list: List[Color] = []
        for colored_node, used in coloring.items():
            pos = position.get(colored_node)
            if pos is not None:
                positions_list.append(pos)
                values_list.append(used)
        return (
            np.asarray(positions_list, dtype=np.int64),
            np.asarray(values_list, dtype=np.int64),
        )
    except (OverflowError, TypeError, ValueError):
        return None


def _graph_target_arrays(csr, target_nodes, rows):
    """Positions of the targets present in the graph, plus aligned row ids.

    ``rows`` carries one caller-defined row id per target (store rows for
    the in-place pruning, local child rows for the fused kernel); targets
    absent from the graph are dropped from both arrays — the scalar
    loops' ``continue``.  Shared by the pruning kernels so the
    ``ids_are_positions`` fast path cannot drift between them.
    """
    import numpy as np

    if csr.ids_are_positions:
        try:
            ids = np.fromiter(target_nodes, dtype=np.int64, count=len(target_nodes))
        except (OverflowError, TypeError, ValueError):
            ids = None
        if ids is not None:
            inside = (ids >= 0) & (ids < csr.num_nodes)
            return ids[inside], np.asarray(rows, dtype=np.int64)[inside]
    position = csr.position
    present_positions: List[int] = []
    present_rows: List[int] = []
    for node, row in zip(target_nodes, rows):
        pos = position.get(node)
        if pos is not None:
            present_positions.append(pos)
            present_rows.append(row)
    return (
        np.asarray(present_positions, dtype=np.int64),
        np.asarray(present_rows, dtype=np.int64),
    )


def _frame_query_positions(frame_colors, frame_size: int, neighbor_colors, colored_mask):
    """Frame positions of query colors plus their validity mask.

    A direct offset when the frame is contiguous (the (Δ+1)/(deg+1)
    shape), one ``searchsorted`` into the (small) frame otherwise; colors
    outside the frame — and uncolored neighbors, per ``colored_mask`` —
    come back invalid.  Shared by the pruning kernels' table paths.
    """
    import numpy as np

    base = int(frame_colors[0])
    if int(frame_colors[-1]) - base + 1 == frame_size:
        query_positions = neighbor_colors - base
        valid = colored_mask & (query_positions >= 0) & (query_positions < frame_size)
        return np.where(valid, query_positions, 0), valid
    query_positions = np.minimum(
        np.searchsorted(frame_colors, neighbor_colors), frame_size - 1
    )
    return query_positions, colored_mask & (frame_colors[query_positions] == neighbor_colors)


def _store_from_sets(sets: Dict[NodeId, Set[Color]]) -> Optional[_PaletteStore]:
    """Build a :class:`_PaletteStore` from a ``node -> color set`` mapping.

    Returns ``None`` when a color cannot be represented as int64 (the
    assignment then stays sets-only and every batch entry point falls back
    to its scalar reference).  Colors that all fit ``[0, 2**31)`` are
    narrowed to int32 (the dtype policy in ``docs/ARCHITECTURE.md``);
    anything negative or wider keeps the overflow-guarded int64
    representation.  Children derived by slicing/compaction inherit the
    root's dtype.
    """
    import itertools

    nodes = list(sets)
    count = len(nodes)
    lengths = np.fromiter(
        (len(sets[node]) for node in nodes), dtype=np.int64, count=count
    )
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    try:
        flat = np.fromiter(
            itertools.chain.from_iterable(sets[node] for node in nodes),
            dtype=np.int64,
            count=total,
        )
    except (OverflowError, TypeError, ValueError):
        return None
    if total:
        owners = np.repeat(np.arange(count, dtype=np.int64), lengths)
        # lexsort is overflow-free (no combined keys): stable sort by
        # (owner, color) leaves each node's slice sorted ascending.
        flat = flat[np.lexsort((flat, owners))]
        # flat is sorted per-owner slice, not globally — bound via min/max.
        if int(flat.min()) >= 0 and int(flat.max()) <= np.iinfo(np.int32).max:
            flat = flat.astype(np.int32)
    return _PaletteStore(nodes, flat, offsets)


class PaletteAssignment:
    """A mapping from node to its (mutable) color palette.

    The class never shares palette storage between nodes, so restricting or
    shrinking one node's palette can never affect another node — matching the
    model, where each node holds its own palette locally.
    """

    __slots__ = ("_sets", "_store")

    def __init__(self, palettes: Mapping[NodeId, Iterable[Color]]) -> None:
        self._sets: Optional[Dict[NodeId, Set[Color]]] = {
            node: set(colors) for node, colors in palettes.items()
        }
        self._store = None

    # ------------------------------------------------------------------
    # backing management (sets <-> array store)
    # ------------------------------------------------------------------
    @property
    def _palettes(self) -> Dict[NodeId, Set[Color]]:
        """The ``node -> color set`` mapping, materialised on first access.

        Array-backed assignments (children of the batch kernels) rebuild
        their sets from the flat store the first time a set-based operation
        needs them; queries keep answering from the arrays directly.
        """
        sets = self._sets
        if sets is None:
            sets = self._materialize_sets()
        return sets

    def _materialize_sets(self) -> Dict[NodeId, Set[Color]]:
        store = self._store
        flat_list = store.flat.tolist()
        bounds = store.offsets.tolist()
        sets: Dict[NodeId, Set[Color]] = {}
        start = 0
        for node, end in zip(store.nodes, bounds[1:]):
            sets[node] = set(flat_list[start:end])
            start = end
        self._sets = sets
        return sets

    def store(self) -> Optional[_PaletteStore]:
        """The cached array store, built from the sets on first use.

        Returns ``None`` when the palette colors cannot be represented as
        int64 — every batch kernel then falls back to its scalar reference.
        Scalar mutation (:meth:`remove_color`, the scalar
        :meth:`remove_colors_used_by_neighbors`) invalidates the cache; the
        batched pruning replaces it wholesale instead.
        """
        store = self._store
        if store is None:
            store = _store_from_sets(self._sets)
            self._store = store if store is not None else _STORE_UNAVAILABLE
            return store
        return None if store is _STORE_UNAVAILABLE else store

    def _store_if_warm(self) -> Optional[_PaletteStore]:
        """The array store iff already built — never triggers a build."""
        store = self._store
        return store if isinstance(store, _PaletteStore) else None

    def _mutable_sets(self) -> Dict[NodeId, Set[Color]]:
        """The sets backing, about to be mutated: drop the array cache."""
        sets = self._palettes
        self._store = None
        return sets

    # ------------------------------------------------------------------
    # constructors for the three problem variants
    # ------------------------------------------------------------------
    @classmethod
    def delta_plus_one(cls, graph: Graph, delta: Optional[int] = None) -> "PaletteAssignment":
        """Palettes ``{0..Δ}`` for every node (plain ``(Δ+1)``-coloring)."""
        max_degree = graph.max_degree() if delta is None else delta
        shared = range(max_degree + 1)
        return cls({node: shared for node in graph.nodes()})

    @classmethod
    def degree_plus_one(cls, graph: Graph) -> "PaletteAssignment":
        """Palettes ``{0..deg(v)}`` (the canonical ``(deg+1)`` instance)."""
        return cls({node: range(graph.degree(node) + 1) for node in graph.nodes()})

    @classmethod
    def from_lists(cls, palettes: Mapping[NodeId, Iterable[Color]]) -> "PaletteAssignment":
        """Arbitrary list-coloring palettes."""
        return cls(palettes)

    @classmethod
    def _adopt(cls, palettes: Dict[NodeId, Set[Color]]) -> "PaletteAssignment":
        """Wrap an already-built ``node -> color set`` dict without copying.

        For the batch kernels, which assemble fresh per-node sets
        themselves; the caller must hand over ownership — the dict and its
        sets must not be mutated afterwards.
        """
        assignment = cls({})
        assignment._sets = palettes
        return assignment

    @classmethod
    def _adopt_store(cls, store: _PaletteStore) -> "PaletteAssignment":
        """Wrap an already-built array store (sets stay lazy).

        The batch kernels' counterpart of :meth:`_adopt`: children of
        :meth:`restricted_by_bins` / :meth:`subset` and the fused
        classification path hand over flat arrays (often slices of a
        parent's store).  The store must honour the layout contract
        (sorted slices, offsets aligned with ``nodes``) and is owned by the
        assignment from here on.
        """
        assignment = cls({})
        assignment._sets = None
        assignment._store = store
        return assignment

    @classmethod
    def _from_arrays(
        cls,
        nodes: List[NodeId],
        flat: np.ndarray,
        offsets: np.ndarray,
        frame=None,
    ) -> "PaletteAssignment":
        """:meth:`_adopt_store` over raw ``(nodes, flat, offsets)`` arrays.

        ``frame`` optionally attaches a membership frame (see
        :meth:`_PaletteStore.membership_frame`) the caller derived from the
        parent's arrays.
        """
        store = _PaletteStore(nodes, flat, offsets)
        if frame is not None:
            store._frame = frame
        return cls._adopt_store(store)

    def copy(self) -> "PaletteAssignment":
        """Deep copy (palette sets are duplicated).

        The immutable array store is shared when present: mutation replaces
        or drops a store, never edits it, so a shared snapshot stays
        consistent on both sides.
        """
        clone = PaletteAssignment({})
        sets = self._sets
        clone._sets = (
            {node: set(colors) for node, colors in sets.items()}
            if sets is not None
            else None
        )
        clone._store = self._store
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        sets = self._sets
        if sets is not None:
            return node in sets
        return node in self._store.index

    def __len__(self) -> int:
        sets = self._sets
        if sets is not None:
            return len(sets)
        return len(self._store.nodes)

    def nodes(self) -> List[NodeId]:
        """Nodes that have a palette."""
        sets = self._sets
        if sets is not None:
            return list(sets)
        return list(self._store.nodes)

    def _row_of(self, store: _PaletteStore, node: NodeId) -> int:
        try:
            return store.index[node]
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    def palette(self, node: NodeId) -> Set[Color]:
        """A copy of the palette of ``node``."""
        sets = self._sets
        if sets is not None:
            try:
                return set(sets[node])
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
        store = self._store
        return set(store.row_slice(self._row_of(store, node)).tolist())

    def iter_palette(self, node: NodeId) -> Iterable[Color]:
        """Iterate the palette of ``node`` without copying into a new set.

        The no-copy counterpart of :meth:`palette` for hot loops that only
        scan (the batched classification and palette-restriction kernels
        flatten every palette once per partition level).  The iterator
        reads the live backing: do not mutate the assignment while holding
        it.  On an array-backed assignment the colors arrive in ascending
        order; on a sets-backed one in set order — consumers must not rely
        on either.
        """
        sets = self._sets
        if sets is not None:
            try:
                return iter(sets[node])
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
        store = self._store
        return iter(store.row_slice(self._row_of(store, node)).tolist())

    def palette_size(self, node: NodeId) -> int:
        """``p(v)``: the number of colors currently available to ``node``."""
        sets = self._sets
        if sets is not None:
            try:
                return len(sets[node])
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
        store = self._store
        row = self._row_of(store, node)
        return int(store.offsets[row + 1] - store.offsets[row])

    def total_size(self) -> int:
        """Total number of (node, color) palette entries — the paper's
        ``Θ(nΔ)`` input-size term for list coloring."""
        sets = self._sets
        if sets is not None:
            return sum(len(colors) for colors in sets.values())
        return int(self._store.offsets[-1])

    def color_universe(self) -> Set[Color]:
        """The union of all palettes (size at most ``n**2`` per Section 3)."""
        store = self._store_if_warm()
        if store is not None:
            return set(store.universe().tolist())
        universe: Set[Color] = set()
        for colors in self._sets.values():
            universe.update(colors)
        return universe

    def contains_color(self, node: NodeId, color: Color) -> bool:
        """Whether ``color`` is currently in the palette of ``node``."""
        sets = self._sets
        if sets is not None:
            return color in sets.get(node, ())
        store = self._store
        row = store.index.get(node)
        if row is None:
            return False
        row_slice = store.row_slice(row)
        try:
            # The slice is sorted: one binary probe instead of materialising
            # the palette (coloring validation probes once per colored node).
            at = int(np.searchsorted(row_slice, color))
        except (OverflowError, TypeError, ValueError):
            return color in row_slice.tolist()
        return bool(at < row_slice.shape[0] and row_slice[at] == color)

    # ------------------------------------------------------------------
    # the operations the algorithms perform
    # ------------------------------------------------------------------
    def restricted_to(
        self,
        nodes: Iterable[NodeId],
        keep_color: Optional[Callable[[Color], bool]] = None,
    ) -> "PaletteAssignment":
        """A new assignment for ``nodes``, optionally filtering colors.

        ``Partition`` restricts the palettes of nodes in bins
        ``1..ℓ^0.1 - 1`` to the colors hashed to their bin: pass
        ``keep_color=lambda c: h2(c) == bin_of_node``.  Without a filter
        this is :meth:`subset` (which slices the array store when warm).
        """
        if keep_color is None:
            return self.subset(nodes)
        sets = self._sets
        store = self._store
        result: Dict[NodeId, Set[Color]] = {}
        for node in nodes:
            if sets is not None:
                try:
                    colors: Iterable[Color] = sets[node]
                except KeyError as exc:
                    raise PaletteError(f"node {node} has no palette") from exc
            else:
                colors = store.row_slice(self._row_of(store, node)).tolist()
            result[node] = {color for color in colors if keep_color(color)}
        return PaletteAssignment._adopt(result)

    def subset(self, nodes: Iterable[NodeId]) -> "PaletteAssignment":
        """A new assignment containing only ``nodes`` (palettes unchanged).

        With a warm array store the child adopts gathered slices of the
        parent's flat arrays (no per-color Python work, sets stay lazy);
        otherwise the palette sets are copied as before.  Results are
        identical either way.
        """
        store = self._store_if_warm()
        if store is not None:
            node_list = list(dict.fromkeys(nodes))
            rows = store.rows_of(node_list)
            from repro.graph.csr import gather_segments

            lengths, gather = gather_segments(store.offsets, rows)
            offsets = np.zeros(len(node_list) + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            child = _PaletteStore(node_list, store.flat[gather], offsets)
            frame = store.membership_frame()
            if frame is not None:
                child._frame = (frame[0], frame[1][gather])
            return PaletteAssignment._adopt_store(child)
        sets = self._palettes
        result: Dict[NodeId, Set[Color]] = {}
        for node in nodes:
            try:
                result[node] = set(sets[node])
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
        return PaletteAssignment._adopt(result)

    def restricted_by_bins(
        self,
        bin_members: Sequence[Iterable[NodeId]],
        universe: "np.ndarray",
        color_bin_ids: "np.ndarray",
    ) -> List["PaletteAssignment"]:
        """Restrict every color bin's palettes in one vectorized pass.

        The batched counterpart of calling :meth:`restricted_to` once per
        color bin with ``keep_color=lambda c: color_bin(c) == b`` — the
        biggest remaining Python loop of ``Partition.run`` /
        ``LowSpacePartition.run``.  ``bin_members[b]`` lists the nodes of
        color bin ``b``; ``universe`` is the *sorted* color universe (shape
        ``(U,)``, int64) and ``color_bin_ids[k]`` the bin that ``h2`` maps
        ``universe[k]`` to (as produced by
        :func:`repro.core.classification.color_bin_arrays`).  Member
        palettes are gathered from the array store, each entry's bin
        resolved with one ``searchsorted`` + gather, and the children
        adopt contiguous slices of the masked compaction — array-backed
        assignments whose Python sets stay lazy.

        Returns one :class:`PaletteAssignment` per group, equal (same nodes,
        same palette *sets*) to the scalar ``restricted_to`` result.  Raises
        :class:`PaletteError` if a member has no palette or a member color is
        missing from ``universe``.  An empty ``universe`` is answered
        explicitly: all-empty member palettes yield all-empty children, any
        member entry is a membership error (the general path would
        otherwise index row 0 of the empty ``color_bin_ids``).
        """
        groups: List[List[NodeId]] = [
            list(dict.fromkeys(members)) for members in bin_members
        ]
        store = self.store()
        if store is None:
            return self._restricted_by_bins_sets(groups, universe, color_bin_ids)
        from repro.graph.csr import gather_segments

        flat_nodes: List[NodeId] = [node for members in groups for node in members]
        rows = store.rows_of(flat_nodes)
        sizes, gather = gather_segments(store.offsets, rows)
        member_flat = store.flat[gather]
        total = int(member_flat.shape[0])
        group_sizes = np.fromiter(
            (len(members) for members in groups), dtype=np.int64, count=len(groups)
        )
        entry_owner = np.repeat(np.arange(len(flat_nodes), dtype=np.int64), sizes)
        if universe.shape[0] == 0:
            if total:
                raise PaletteError(
                    "restricted_by_bins: a member color is missing from the universe"
                )
            keep = np.zeros(0, dtype=bool)
        else:
            positions = np.searchsorted(universe, member_flat)
            if total and (
                bool((positions >= universe.shape[0]).any())
                or not bool(np.array_equal(universe[np.minimum(positions, universe.shape[0] - 1)], member_flat))
            ):
                raise PaletteError(
                    "restricted_by_bins: a member color is missing from the universe"
                )
            owner_bin = np.repeat(
                np.arange(len(groups), dtype=np.int64), group_sizes
            )[entry_owner]
            keep = color_bin_ids[positions] == owner_bin
        kept_flat = member_flat[keep]
        kept_counts = (
            np.bincount(entry_owner[keep], minlength=len(flat_nodes))
            if total
            else np.zeros(len(flat_nodes), dtype=np.int64)
        )
        bounds = np.zeros(len(flat_nodes) + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=bounds[1:])
        frame = store.membership_frame()
        kept_frame = frame[1][gather][keep] if frame is not None else None
        results: List[PaletteAssignment] = []
        cursor = 0
        for members, member_count in zip(groups, group_sizes.tolist()):
            node_bounds = bounds[cursor : cursor + member_count + 1]
            offsets = node_bounds - node_bounds[0]
            child = _PaletteStore(
                members,
                kept_flat[node_bounds[0] : node_bounds[-1]],
                np.ascontiguousarray(offsets),
            )
            if kept_frame is not None:
                child._frame = (
                    frame[0], kept_frame[node_bounds[0] : node_bounds[-1]]
                )
            results.append(PaletteAssignment._adopt_store(child))
            cursor += member_count
        return results

    def _restricted_by_bins_sets(
        self,
        groups: List[List[NodeId]],
        universe: "np.ndarray",
        color_bin_ids: "np.ndarray",
    ) -> List["PaletteAssignment"]:
        """Sets-backed :meth:`restricted_by_bins` (colors beyond int64)."""
        import itertools

        flat_nodes: List[NodeId] = [node for members in groups for node in members]
        palettes: List[Set[Color]] = []
        for node in flat_nodes:
            try:
                palettes.append(self._palettes[node])
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
        sizes = np.fromiter(
            (len(colors) for colors in palettes), dtype=np.int64, count=len(palettes)
        )
        total = int(sizes.sum())
        if universe.shape[0] == 0:
            if total:
                raise PaletteError(
                    "restricted_by_bins: a member color is missing from the universe"
                )
            return [
                PaletteAssignment._adopt({node: set() for node in members})
                for members in groups
            ]
        flat_colors = np.fromiter(
            itertools.chain.from_iterable(palettes), dtype=np.int64, count=total
        )
        entry_owner = np.repeat(np.arange(len(flat_nodes), dtype=np.int64), sizes)
        node_group = np.repeat(
            np.arange(len(groups), dtype=np.int64),
            np.fromiter(
                (len(members) for members in groups), dtype=np.int64, count=len(groups)
            ),
        )
        owner_bin = node_group[entry_owner]
        positions = np.searchsorted(universe, flat_colors)
        if total and (
            bool((positions >= universe.shape[0]).any())
            or not bool(np.array_equal(universe[np.minimum(positions, universe.shape[0] - 1)], flat_colors))
        ):
            raise PaletteError("restricted_by_bins: a member color is missing from the universe")
        keep = color_bin_ids[positions] == owner_bin
        kept_colors = flat_colors[keep].tolist()
        kept_counts = np.bincount(entry_owner[keep], minlength=len(flat_nodes))
        bounds = np.zeros(len(flat_nodes) + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=bounds[1:])
        # Per-node set rebuilding goes through plain lists: NumPy scalar
        # indexing would dominate this final loop.
        bounds_list = bounds.tolist()
        results: List[PaletteAssignment] = []
        cursor = 0
        for members in groups:
            restricted: Dict[NodeId, Set[Color]] = {}
            for node in members:
                start, end = bounds_list[cursor], bounds_list[cursor + 1]
                restricted[node] = set(kept_colors[start:end])
                cursor += 1
            results.append(PaletteAssignment._adopt(restricted))
        return results

    def remove_colors_used_by_neighbors(
        self,
        graph: Graph,
        coloring: ColoringMap,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> int:
        """Remove from each node's palette the colors of its colored neighbors.

        This implements the two "Update color palettes of ..." steps of
        ``ColorReduce`` (and the corresponding step of
        ``LowSpaceColorReduce``).  Returns the number of palette entries
        removed, which the space-accounting experiments use.  Scalar
        reference of :meth:`remove_colors_used_by_neighbors_batch`.
        """
        palettes = self._mutable_sets()
        targets = palettes.keys() if nodes is None else nodes
        removed = 0
        for node in targets:
            if node not in palettes:
                raise PaletteError(f"node {node} has no palette")
            if node not in graph:
                continue
            palette = palettes[node]
            for neighbor in graph.iter_neighbors(node):
                used = coloring.get(neighbor)
                if used is not None and used in palette:
                    palette.discard(used)
                    removed += 1
        return removed

    def remove_colors_used_by_neighbors_batch(
        self,
        graph: Graph,
        coloring: ColoringMap,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> int:
        """Vectorized :meth:`remove_colors_used_by_neighbors` (same result).

        One gather over the graph's CSR view collects every target node's
        colored-neighbor colors, one segmented-membership mark
        (:func:`repro.hashing.batch.segment_mark_members`) locates the
        palette entries they block, and one masked compaction swaps in the
        pruned store; the returned ``removed`` count equals the scalar
        path's exactly (a color blocked by several neighbors is removed —
        and counted — once).  Falls back to the scalar reference when the
        store is unavailable (colors or coloring values beyond int64).
        The one observable difference is the error path: missing target
        palettes are rejected up front, before any pruning, while the
        scalar loop may discard some entries before reaching the offending
        target.
        """
        store = self.store()
        if store is None:
            return self.remove_colors_used_by_neighbors(graph, coloring, nodes)
        if nodes is None:
            target_nodes: Sequence[NodeId] = store.nodes
            rows_list: Sequence[int] = range(len(store.nodes))
        else:
            target_nodes = list(nodes)
            rows_list = store.rows_of(target_nodes).tolist()
        if not len(target_nodes) or not coloring or not store.flat.shape[0]:
            return 0
        from repro.graph.csr import gather_segments
        from repro.hashing.batch import segment_mark_members

        csr = graph.csr()
        colored_arrays = _coloring_arrays(csr, coloring)
        if colored_arrays is None:
            return self.remove_colors_used_by_neighbors(graph, coloring, nodes)
        positions_array, values_array = colored_arrays
        if not positions_array.shape[0]:
            return 0
        color_of = np.zeros(csr.num_nodes, dtype=np.int64)
        has_color = np.zeros(csr.num_nodes, dtype=bool)
        color_of[positions_array] = values_array
        has_color[positions_array] = True
        target_positions, target_rows = _graph_target_arrays(
            csr, target_nodes, rows_list
        )
        if not target_positions.shape[0]:
            return 0
        lengths, gather = gather_segments(csr.indptr, target_positions)
        neighbor_positions = csr.indices[gather]
        num_rows = len(store.nodes)
        total_entries = int(store.flat.shape[0])
        frame = store.membership_frame()
        frame_size = int(frame[0].shape[0]) if frame is not None else 0
        if frame_size and (
            num_rows * frame_size <= max(1 << 22, 4 * total_entries)
        ):
            # A (possibly inherited) membership frame is available and small:
            # resolve each colored neighbor's color to its frame position,
            # scatter (row, position) marks into a flat table, and read
            # every entry's fate back with one gather.  Uncolored neighbors
            # ride along and are dropped by the validity mask.
            frame_colors, entry_positions = frame
            query_positions, valid = _frame_query_positions(
                frame_colors,
                frame_size,
                color_of[neighbor_positions],
                has_color[neighbor_positions],
            )
            query_rows = np.repeat(target_rows, lengths)
            table = np.zeros(num_rows * frame_size, dtype=bool)
            table[query_rows[valid] * frame_size + query_positions[valid]] = True
            removed_mask = table[
                store.entry_rows() * np.int64(frame_size) + entry_positions
            ]
        else:
            colored = has_color[neighbor_positions]
            if not bool(colored.any()):
                return 0
            removed_mask = segment_mark_members(
                store.flat,
                store.offsets,
                color_of[neighbor_positions[colored]],
                np.repeat(target_rows, lengths)[colored],
                segment_of_entry=store.entry_rows(),
            )
        removed = int(removed_mask.sum())
        if removed == 0:
            return 0
        keep_mask = ~removed_mask
        new_sizes = store.sizes() - np.bincount(
            store.entry_rows()[removed_mask], minlength=num_rows
        )
        new_offsets = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=new_offsets[1:])
        pruned = _PaletteStore(store.nodes, store.flat[keep_mask], new_offsets)
        if frame is not None:
            pruned._frame = (frame[0], frame[1][keep_mask])
        self._store = pruned
        self._sets = None
        return removed

    def subset_updated(
        self,
        nodes: Iterable[NodeId],
        graph: Graph,
        coloring: ColoringMap,
    ) -> tuple:
        """Fused :meth:`subset` + :meth:`remove_colors_used_by_neighbors_batch`.

        The bad-graph and capacity-split steps of both ``ColorReduce``
        drivers restrict the palettes to an instance's nodes and
        immediately prune the colors of colored neighbors.  Running the
        two as one kernel gathers each member's palette slice (and its
        inherited frame positions) exactly once and compacts straight to
        the pruned child — the intermediate restricted store is never
        materialised.  Returns ``(child, removed)``, identical to
        ``child = self.subset(nodes)`` followed by
        ``removed = child.remove_colors_used_by_neighbors(graph, coloring)``
        (the scalar reference the drivers use when ``graph_use_batch`` is
        off).
        """
        store = self._store_if_warm()
        frame = store.membership_frame() if store is not None else None
        frame_size = int(frame[0].shape[0]) if frame is not None else 0
        node_list = list(dict.fromkeys(nodes))
        if (
            store is None
            or not frame_size
            or len(node_list) * frame_size > (1 << 22)
            or not coloring
        ):
            child = self.subset(node_list)
            return child, child.remove_colors_used_by_neighbors_batch(graph, coloring)
        from repro.graph.csr import gather_segments

        rows = store.rows_of(node_list)
        member_sizes, member_gather = gather_segments(store.offsets, rows)
        member_flat = store.flat[member_gather]
        member_positions = frame[1][member_gather]
        member_count = len(node_list)
        offsets = np.zeros(member_count + 1, dtype=np.int64)
        np.cumsum(member_sizes, out=offsets[1:])

        csr = graph.csr()
        colored_arrays = _coloring_arrays(csr, coloring)
        if colored_arrays is None:
            child = self.subset(node_list)
            return child, child.remove_colors_used_by_neighbors(graph, coloring)
        colored_positions_array, colored_values_array = colored_arrays
        frame_colors = frame[0]
        child_frame = (frame_colors, member_positions)
        if not colored_positions_array.shape[0]:
            child_store = _PaletteStore(node_list, member_flat, offsets)
            child_store._frame = child_frame
            return PaletteAssignment._adopt_store(child_store), 0
        color_of = np.zeros(csr.num_nodes, dtype=np.int64)
        has_color = np.zeros(csr.num_nodes, dtype=bool)
        color_of[colored_positions_array] = colored_values_array
        has_color[colored_positions_array] = True

        # Members present in the graph, with their local row for the marks.
        target_positions, target_local_rows = _graph_target_arrays(
            csr, node_list, range(member_count)
        )

        removed = 0
        keep_flat = member_flat
        keep_positions = member_positions
        if target_positions.shape[0]:
            lengths, edge_gather = gather_segments(csr.indptr, target_positions)
            neighbor_positions = csr.indices[edge_gather]
            query_positions, valid = _frame_query_positions(
                frame_colors,
                frame_size,
                color_of[neighbor_positions],
                has_color[neighbor_positions],
            )
            query_rows = np.repeat(target_local_rows, lengths)
            table = np.zeros(member_count * frame_size, dtype=bool)
            table[query_rows[valid] * frame_size + query_positions[valid]] = True
            member_entry_rows = np.repeat(
                np.arange(member_count, dtype=np.int64), member_sizes
            )
            removed_mask = table[
                member_entry_rows * np.int64(frame_size) + member_positions
            ]
            removed = int(removed_mask.sum())
            if removed:
                keep = ~removed_mask
                keep_flat = member_flat[keep]
                keep_positions = member_positions[keep]
                child_frame = (frame_colors, keep_positions)
                new_sizes = member_sizes - np.bincount(
                    member_entry_rows[removed_mask], minlength=member_count
                )
                offsets = np.zeros(member_count + 1, dtype=np.int64)
                np.cumsum(new_sizes, out=offsets[1:])
        child_store = _PaletteStore(node_list, keep_flat, offsets)
        child_store._frame = child_frame
        return PaletteAssignment._adopt_store(child_store), removed

    def remove_color(self, node: NodeId, color: Color) -> None:
        """Remove a single color from a node's palette (no-op if absent)."""
        palettes = self._mutable_sets()
        try:
            palettes[node].discard(color)
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def validate_for_graph(self, graph: Graph, slack: int = 1) -> None:
        """Check each node has a palette of size at least ``deg(v) + slack``.

        The paper's invariant (Corollary 3.3 (iii)) requires ``d(v) < p(v)``;
        the default ``slack=1`` checks exactly that.  Raises
        :class:`PaletteError` on the first violation (in graph node order —
        the warm-store vectorized path reports the same node as the scalar
        loop).
        """
        store = self._store_if_warm()
        if store is None:
            palettes = self._palettes
            for node in graph.nodes():
                if node not in palettes:
                    raise PaletteError(f"node {node} of the graph has no palette")
                if len(palettes[node]) < graph.degree(node) + slack:
                    raise PaletteError(
                        f"palette of node {node} has {len(palettes[node])} colors "
                        f"but degree is {graph.degree(node)} (need degree + {slack})"
                    )
            return
        node_list = graph.nodes()
        index = store.index
        rows = np.fromiter(
            (index.get(node, -1) for node in node_list),
            dtype=np.int64,
            count=len(node_list),
        )
        missing = rows < 0
        safe_rows = np.where(missing, 0, rows)
        sizes = store.offsets[safe_rows + 1] - store.offsets[safe_rows]
        degrees = np.fromiter(
            (graph.degree(node) for node in node_list),
            dtype=np.int64,
            count=len(node_list),
        )
        bad = missing | (sizes < degrees + slack)
        if not bool(bad.any()):
            return
        first = int(np.argmax(bad))
        node = node_list[first]
        if bool(missing[first]):
            raise PaletteError(f"node {node} of the graph has no palette")
        raise PaletteError(
            f"palette of node {node} has {int(sizes[first])} colors "
            f"but degree is {int(degrees[first])} (need degree + {slack})"
        )

    def min_slack(self, graph: Graph) -> int:
        """The minimum over nodes of ``p(v) - d(v)`` (can be negative)."""
        store = self._store_if_warm()
        if store is None:
            palettes = self._palettes
            slacks = [
                len(palettes[node]) - graph.degree(node)
                for node in graph.nodes()
                if node in palettes
            ]
            if not slacks:
                return 0
            return min(slacks)
        node_list = graph.nodes()
        index = store.index
        rows = np.fromiter(
            (index.get(node, -1) for node in node_list),
            dtype=np.int64,
            count=len(node_list),
        )
        present = rows >= 0
        if not bool(present.any()):
            return 0
        present_rows = rows[present]
        sizes = store.offsets[present_rows + 1] - store.offsets[present_rows]
        degrees = np.fromiter(
            (graph.degree(node) for node, keep in zip(node_list, present.tolist()) if keep),
            dtype=np.int64,
            count=int(present.sum()),
        )
        return int((sizes - degrees).min())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaletteAssignment(nodes={len(self)}, "
            f"entries={self.total_size()})"
        )
