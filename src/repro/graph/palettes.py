"""Per-node color palettes for (Δ+1)-, (Δ+1)-list- and (deg+1)-list-coloring.

The paper distinguishes three problem variants (Section 1):

* ``(Δ+1)-coloring`` — every palette is ``{0, ..., Δ}``,
* ``(Δ+1)-list coloring`` — each node has an arbitrary palette of Δ+1 colors,
* ``(deg+1)-list coloring`` — node ``v`` has an arbitrary palette of
  ``deg(v)+1`` colors.

:class:`PaletteAssignment` stores palettes as per-node ordered sets and
provides exactly the operations the algorithms perform on them:

* restriction to the colors a hash function maps to a given bin
  (``Partition`` / ``LowSpacePartition``) — per bin via
  :meth:`PaletteAssignment.restricted_to`, or for a whole partition level
  at once via the vectorized
  :meth:`PaletteAssignment.restricted_by_bins`,
* removal of colors already used by colored neighbors (the two
  "update color palettes" steps in ``ColorReduce``),
* size queries ``p(v)`` used by the good/bad node classification.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.errors import PaletteError
from repro.graph.graph import Graph
from repro.types import Color, ColoringMap, NodeId


def color_bins_of_entries(np, universe, universe_bins, flat_colors):
    """Color bin of every flattened palette entry (one gather).

    ``universe`` is the *sorted* color universe (``(U,)`` int64) and
    ``universe_bins`` the aligned bin of each universe color; the result is
    ``universe_bins[position_of(color)]`` for every entry of
    ``flat_colors``.  When the universe is (nearly) contiguous — the common
    ``{0..Δ}``-style instance — a direct lookup table replaces the
    ``searchsorted``.  Shared by the batched classification kernels
    (:mod:`repro.core.classification`,
    :mod:`repro.core.low_space.machine_sets`), whose flattened entries are
    guaranteed to lie in the universe; entries outside it land on arbitrary
    bins (:meth:`PaletteAssignment.restricted_by_bins` validates membership
    explicitly instead, reusing its own lookup).
    """
    size = universe.shape[0]
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    base = int(universe[0])
    span = int(universe[-1]) - base + 1
    if span <= 4 * size + 64:
        table = np.zeros(span, dtype=np.int64)
        table[universe - base] = universe_bins
        clipped = np.clip(flat_colors - base, 0, span - 1)
        return table[clipped]
    positions = np.searchsorted(universe, flat_colors)
    return universe_bins[np.minimum(positions, size - 1)]


class PaletteAssignment:
    """A mapping from node to its (mutable) color palette.

    The class never shares palette storage between nodes, so restricting or
    shrinking one node's palette can never affect another node — matching the
    model, where each node holds its own palette locally.
    """

    __slots__ = ("_palettes",)

    def __init__(self, palettes: Mapping[NodeId, Iterable[Color]]) -> None:
        self._palettes: Dict[NodeId, Set[Color]] = {
            node: set(colors) for node, colors in palettes.items()
        }

    # ------------------------------------------------------------------
    # constructors for the three problem variants
    # ------------------------------------------------------------------
    @classmethod
    def delta_plus_one(cls, graph: Graph, delta: Optional[int] = None) -> "PaletteAssignment":
        """Palettes ``{0..Δ}`` for every node (plain ``(Δ+1)``-coloring)."""
        max_degree = graph.max_degree() if delta is None else delta
        shared = range(max_degree + 1)
        return cls({node: shared for node in graph.nodes()})

    @classmethod
    def degree_plus_one(cls, graph: Graph) -> "PaletteAssignment":
        """Palettes ``{0..deg(v)}`` (the canonical ``(deg+1)`` instance)."""
        return cls({node: range(graph.degree(node) + 1) for node in graph.nodes()})

    @classmethod
    def from_lists(cls, palettes: Mapping[NodeId, Iterable[Color]]) -> "PaletteAssignment":
        """Arbitrary list-coloring palettes."""
        return cls(palettes)

    @classmethod
    def _adopt(cls, palettes: Dict[NodeId, Set[Color]]) -> "PaletteAssignment":
        """Wrap an already-built ``node -> color set`` dict without copying.

        For the batch kernels, which assemble fresh per-node sets
        themselves (:meth:`restricted_by_bins`, the fused classification
        path); the caller must hand over ownership — the dict and its sets
        must not be mutated afterwards.
        """
        assignment = cls({})
        assignment._palettes = palettes
        return assignment

    def copy(self) -> "PaletteAssignment":
        """Deep copy (palette sets are duplicated)."""
        return PaletteAssignment(self._palettes)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._palettes

    def __len__(self) -> int:
        return len(self._palettes)

    def nodes(self) -> List[NodeId]:
        """Nodes that have a palette."""
        return list(self._palettes)

    def palette(self, node: NodeId) -> Set[Color]:
        """A copy of the palette of ``node``."""
        try:
            return set(self._palettes[node])
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    def iter_palette(self, node: NodeId) -> Iterable[Color]:
        """Iterate the palette of ``node`` without copying the set.

        The no-copy counterpart of :meth:`palette` for hot loops that only
        scan (the batched classification and palette-restriction kernels
        flatten every palette once per partition level).  The iterator
        reads the live palette set: do not mutate the assignment while
        holding it.
        """
        try:
            return iter(self._palettes[node])
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    def palette_size(self, node: NodeId) -> int:
        """``p(v)``: the number of colors currently available to ``node``."""
        try:
            return len(self._palettes[node])
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    def total_size(self) -> int:
        """Total number of (node, color) palette entries — the paper's
        ``Θ(nΔ)`` input-size term for list coloring."""
        return sum(len(colors) for colors in self._palettes.values())

    def color_universe(self) -> Set[Color]:
        """The union of all palettes (size at most ``n**2`` per Section 3)."""
        universe: Set[Color] = set()
        for colors in self._palettes.values():
            universe.update(colors)
        return universe

    def contains_color(self, node: NodeId, color: Color) -> bool:
        """Whether ``color`` is currently in the palette of ``node``."""
        return color in self._palettes.get(node, ())

    # ------------------------------------------------------------------
    # the operations the algorithms perform
    # ------------------------------------------------------------------
    def restricted_to(
        self,
        nodes: Iterable[NodeId],
        keep_color: Optional[Callable[[Color], bool]] = None,
    ) -> "PaletteAssignment":
        """A new assignment for ``nodes``, optionally filtering colors.

        ``Partition`` restricts the palettes of nodes in bins
        ``1..ℓ^0.1 - 1`` to the colors hashed to their bin: pass
        ``keep_color=lambda c: h2(c) == bin_of_node``.
        """
        result: Dict[NodeId, Set[Color]] = {}
        for node in nodes:
            try:
                colors = self._palettes[node]
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
            if keep_color is None:
                result[node] = set(colors)
            else:
                result[node] = {color for color in colors if keep_color(color)}
        return PaletteAssignment(result)

    def subset(self, nodes: Iterable[NodeId]) -> "PaletteAssignment":
        """A new assignment containing only ``nodes`` (palettes unchanged)."""
        return self.restricted_to(nodes, keep_color=None)

    def restricted_by_bins(
        self,
        bin_members: Sequence[Iterable[NodeId]],
        universe: "np.ndarray",
        color_bin_ids: "np.ndarray",
    ) -> List["PaletteAssignment"]:
        """Restrict every color bin's palettes in one vectorized pass.

        The batched counterpart of calling :meth:`restricted_to` once per
        color bin with ``keep_color=lambda c: color_bin(c) == b`` — the
        biggest remaining Python loop of ``Partition.run`` /
        ``LowSpacePartition.run``.  ``bin_members[b]`` lists the nodes of
        color bin ``b``; ``universe`` is the *sorted* color universe (shape
        ``(U,)``, int64) and ``color_bin_ids[k]`` the bin that ``h2`` maps
        ``universe[k]`` to (as produced by
        :func:`repro.core.classification.color_bin_arrays`).  Every member
        palette is flattened once, each entry's bin resolved with one
        ``searchsorted`` + gather, and the per-node sets rebuilt from the
        kept entries — no per-color Python predicate calls.

        Returns one :class:`PaletteAssignment` per group, equal (same nodes,
        same palette *sets*) to the scalar ``restricted_to`` result.  Raises
        :class:`PaletteError` if a member has no palette or a member color is
        missing from ``universe``.
        """
        import itertools

        import numpy as np

        groups: List[List[NodeId]] = [list(members) for members in bin_members]
        flat_nodes: List[NodeId] = [node for members in groups for node in members]
        palettes: List[Set[Color]] = []
        for node in flat_nodes:
            try:
                palettes.append(self._palettes[node])
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
        sizes = np.fromiter(
            (len(colors) for colors in palettes), dtype=np.int64, count=len(palettes)
        )
        total = int(sizes.sum())
        flat_colors = np.fromiter(
            itertools.chain.from_iterable(palettes), dtype=np.int64, count=total
        )
        entry_owner = np.repeat(np.arange(len(flat_nodes), dtype=np.int64), sizes)
        node_group = np.repeat(
            np.arange(len(groups), dtype=np.int64),
            np.fromiter(
                (len(members) for members in groups), dtype=np.int64, count=len(groups)
            ),
        )
        owner_bin = node_group[entry_owner]
        positions = np.searchsorted(universe, flat_colors)
        if total and (
            bool((positions >= universe.shape[0]).any())
            or not bool(np.array_equal(universe[np.minimum(positions, universe.shape[0] - 1)], flat_colors))
        ):
            raise PaletteError("restricted_by_bins: a member color is missing from the universe")
        keep = color_bin_ids[np.minimum(positions, max(universe.shape[0] - 1, 0))] == owner_bin
        kept_colors = flat_colors[keep].tolist()
        kept_counts = np.bincount(entry_owner[keep], minlength=len(flat_nodes))
        bounds = np.zeros(len(flat_nodes) + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=bounds[1:])
        # Per-node set rebuilding goes through plain lists: NumPy scalar
        # indexing would dominate this final loop.
        bounds_list = bounds.tolist()
        results: List[PaletteAssignment] = []
        cursor = 0
        for members in groups:
            restricted: Dict[NodeId, Set[Color]] = {}
            for node in members:
                start, end = bounds_list[cursor], bounds_list[cursor + 1]
                restricted[node] = set(kept_colors[start:end])
                cursor += 1
            results.append(PaletteAssignment._adopt(restricted))
        return results

    def remove_colors_used_by_neighbors(
        self,
        graph: Graph,
        coloring: ColoringMap,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> int:
        """Remove from each node's palette the colors of its colored neighbors.

        This implements the two "Update color palettes of ..." steps of
        ``ColorReduce`` (and the corresponding step of
        ``LowSpaceColorReduce``).  Returns the number of palette entries
        removed, which the space-accounting experiments use.
        """
        targets = self._palettes.keys() if nodes is None else nodes
        removed = 0
        for node in targets:
            if node not in self._palettes:
                raise PaletteError(f"node {node} has no palette")
            if node not in graph:
                continue
            palette = self._palettes[node]
            for neighbor in graph.iter_neighbors(node):
                used = coloring.get(neighbor)
                if used is not None and used in palette:
                    palette.discard(used)
                    removed += 1
        return removed

    def remove_color(self, node: NodeId, color: Color) -> None:
        """Remove a single color from a node's palette (no-op if absent)."""
        try:
            self._palettes[node].discard(color)
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def validate_for_graph(self, graph: Graph, slack: int = 1) -> None:
        """Check each node has a palette of size at least ``deg(v) + slack``.

        The paper's invariant (Corollary 3.3 (iii)) requires ``d(v) < p(v)``;
        the default ``slack=1`` checks exactly that.  Raises
        :class:`PaletteError` on the first violation.
        """
        for node in graph.nodes():
            if node not in self._palettes:
                raise PaletteError(f"node {node} of the graph has no palette")
            if len(self._palettes[node]) < graph.degree(node) + slack:
                raise PaletteError(
                    f"palette of node {node} has {len(self._palettes[node])} colors "
                    f"but degree is {graph.degree(node)} (need degree + {slack})"
                )

    def min_slack(self, graph: Graph) -> int:
        """The minimum over nodes of ``p(v) - d(v)`` (can be negative)."""
        slacks = [
            len(self._palettes[node]) - graph.degree(node)
            for node in graph.nodes()
            if node in self._palettes
        ]
        if not slacks:
            return 0
        return min(slacks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaletteAssignment(nodes={len(self._palettes)}, "
            f"entries={self.total_size()})"
        )
