"""Per-node color palettes for (Δ+1)-, (Δ+1)-list- and (deg+1)-list-coloring.

The paper distinguishes three problem variants (Section 1):

* ``(Δ+1)-coloring`` — every palette is ``{0, ..., Δ}``,
* ``(Δ+1)-list coloring`` — each node has an arbitrary palette of Δ+1 colors,
* ``(deg+1)-list coloring`` — node ``v`` has an arbitrary palette of
  ``deg(v)+1`` colors.

:class:`PaletteAssignment` stores palettes as per-node ordered sets and
provides exactly the operations the algorithms perform on them:

* restriction to the colors a hash function maps to a given bin
  (``Partition`` / ``LowSpacePartition``),
* removal of colors already used by colored neighbors (the two
  "update color palettes" steps in ``ColorReduce``),
* size queries ``p(v)`` used by the good/bad node classification.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set

from repro.errors import PaletteError
from repro.graph.graph import Graph
from repro.types import Color, ColoringMap, NodeId


class PaletteAssignment:
    """A mapping from node to its (mutable) color palette.

    The class never shares palette storage between nodes, so restricting or
    shrinking one node's palette can never affect another node — matching the
    model, where each node holds its own palette locally.
    """

    __slots__ = ("_palettes",)

    def __init__(self, palettes: Mapping[NodeId, Iterable[Color]]) -> None:
        self._palettes: Dict[NodeId, Set[Color]] = {
            node: set(colors) for node, colors in palettes.items()
        }

    # ------------------------------------------------------------------
    # constructors for the three problem variants
    # ------------------------------------------------------------------
    @classmethod
    def delta_plus_one(cls, graph: Graph, delta: Optional[int] = None) -> "PaletteAssignment":
        """Palettes ``{0..Δ}`` for every node (plain ``(Δ+1)``-coloring)."""
        max_degree = graph.max_degree() if delta is None else delta
        shared = range(max_degree + 1)
        return cls({node: shared for node in graph.nodes()})

    @classmethod
    def degree_plus_one(cls, graph: Graph) -> "PaletteAssignment":
        """Palettes ``{0..deg(v)}`` (the canonical ``(deg+1)`` instance)."""
        return cls({node: range(graph.degree(node) + 1) for node in graph.nodes()})

    @classmethod
    def from_lists(cls, palettes: Mapping[NodeId, Iterable[Color]]) -> "PaletteAssignment":
        """Arbitrary list-coloring palettes."""
        return cls(palettes)

    def copy(self) -> "PaletteAssignment":
        """Deep copy (palette sets are duplicated)."""
        return PaletteAssignment(self._palettes)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._palettes

    def __len__(self) -> int:
        return len(self._palettes)

    def nodes(self) -> List[NodeId]:
        """Nodes that have a palette."""
        return list(self._palettes)

    def palette(self, node: NodeId) -> Set[Color]:
        """A copy of the palette of ``node``."""
        try:
            return set(self._palettes[node])
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    def palette_size(self, node: NodeId) -> int:
        """``p(v)``: the number of colors currently available to ``node``."""
        try:
            return len(self._palettes[node])
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    def total_size(self) -> int:
        """Total number of (node, color) palette entries — the paper's
        ``Θ(nΔ)`` input-size term for list coloring."""
        return sum(len(colors) for colors in self._palettes.values())

    def color_universe(self) -> Set[Color]:
        """The union of all palettes (size at most ``n**2`` per Section 3)."""
        universe: Set[Color] = set()
        for colors in self._palettes.values():
            universe.update(colors)
        return universe

    def contains_color(self, node: NodeId, color: Color) -> bool:
        """Whether ``color`` is currently in the palette of ``node``."""
        return color in self._palettes.get(node, ())

    # ------------------------------------------------------------------
    # the operations the algorithms perform
    # ------------------------------------------------------------------
    def restricted_to(
        self,
        nodes: Iterable[NodeId],
        keep_color: Optional[Callable[[Color], bool]] = None,
    ) -> "PaletteAssignment":
        """A new assignment for ``nodes``, optionally filtering colors.

        ``Partition`` restricts the palettes of nodes in bins
        ``1..ℓ^0.1 - 1`` to the colors hashed to their bin: pass
        ``keep_color=lambda c: h2(c) == bin_of_node``.
        """
        result: Dict[NodeId, Set[Color]] = {}
        for node in nodes:
            try:
                colors = self._palettes[node]
            except KeyError as exc:
                raise PaletteError(f"node {node} has no palette") from exc
            if keep_color is None:
                result[node] = set(colors)
            else:
                result[node] = {color for color in colors if keep_color(color)}
        return PaletteAssignment(result)

    def subset(self, nodes: Iterable[NodeId]) -> "PaletteAssignment":
        """A new assignment containing only ``nodes`` (palettes unchanged)."""
        return self.restricted_to(nodes, keep_color=None)

    def remove_colors_used_by_neighbors(
        self,
        graph: Graph,
        coloring: ColoringMap,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> int:
        """Remove from each node's palette the colors of its colored neighbors.

        This implements the two "Update color palettes of ..." steps of
        ``ColorReduce`` (and the corresponding step of
        ``LowSpaceColorReduce``).  Returns the number of palette entries
        removed, which the space-accounting experiments use.
        """
        targets = self._palettes.keys() if nodes is None else nodes
        removed = 0
        for node in targets:
            if node not in self._palettes:
                raise PaletteError(f"node {node} has no palette")
            if node not in graph:
                continue
            palette = self._palettes[node]
            for neighbor in graph.iter_neighbors(node):
                used = coloring.get(neighbor)
                if used is not None and used in palette:
                    palette.discard(used)
                    removed += 1
        return removed

    def remove_color(self, node: NodeId, color: Color) -> None:
        """Remove a single color from a node's palette (no-op if absent)."""
        try:
            self._palettes[node].discard(color)
        except KeyError as exc:
            raise PaletteError(f"node {node} has no palette") from exc

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def validate_for_graph(self, graph: Graph, slack: int = 1) -> None:
        """Check each node has a palette of size at least ``deg(v) + slack``.

        The paper's invariant (Corollary 3.3 (iii)) requires ``d(v) < p(v)``;
        the default ``slack=1`` checks exactly that.  Raises
        :class:`PaletteError` on the first violation.
        """
        for node in graph.nodes():
            if node not in self._palettes:
                raise PaletteError(f"node {node} of the graph has no palette")
            if len(self._palettes[node]) < graph.degree(node) + slack:
                raise PaletteError(
                    f"palette of node {node} has {len(self._palettes[node])} colors "
                    f"but degree is {graph.degree(node)} (need degree + {slack})"
                )

    def min_slack(self, graph: Graph) -> int:
        """The minimum over nodes of ``p(v) - d(v)`` (can be negative)."""
        slacks = [
            len(self._palettes[node]) - graph.degree(node)
            for node in graph.nodes()
            if node in self._palettes
        ]
        if not slacks:
            return 0
        return min(slacks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaletteAssignment(nodes={len(self._palettes)}, "
            f"entries={self.total_size()})"
        )
