"""Array ("CSR") view of a :class:`repro.graph.graph.Graph`.

The batched cost kernels (:mod:`repro.core.classification`,
:mod:`repro.core.low_space.machine_sets`) need the graph as flat arrays so
in-bin degrees, bin sizes and bad-node counts become
``np.bincount``/scatter operations instead of per-node Python loops.  This
module provides that view:

* ``node_ids[i]`` — the graph's (arbitrary integer) node identifiers in
  insertion order; ``position[node] == i`` inverts it,
* ``indptr`` / ``indices`` — the usual CSR layout: the neighbors of the
  node at position ``i`` sit at positions ``indices[indptr[i]:indptr[i+1]]``
  (values are *positions*, not identifiers), sorted within each run,
* ``degrees[i]`` — ``len`` of that slice,
* ``edge_sources`` — position of the source node of every directed edge,
  aligned with ``indices`` (i.e. ``repeat(arange(n), degrees)``), so
  "count neighbors in the same bin" is one boolean compare plus one
  bincount over ``edge_sources``.

The array-view contract
-----------------------
Views are built lazily on the first :meth:`repro.graph.graph.Graph.csr`
call (or by the batched cost evaluators, whose ``_prepare`` warms the view
as a side effect of hash-pair selection) and cached on the instance; any
mutation (``add_node`` / ``add_edge``) sets ``Graph._csr = None`` so the
next ``csr()`` call rebuilds from the live adjacency sets.  The view itself
is immutable and shares nothing with the adjacency sets, so subgraphs
extracted from a view stay valid after the parent mutates.

On top of the view this module provides the vectorized subgraph-extraction
kernels the recursion pipeline uses to materialise bin instances:

* :func:`extract_induced` — mask + gather + reindex producing a child
  ``GraphCSR`` (in a caller-chosen node order) in one pass,
* :func:`split_by_bins` — all bin subgraphs of a partition level from one
  shared label/reindex scatter plus per-group gathers,
* :func:`degrees_within` — induced-subgraph degrees as one bincount,
  replacing the per-neighbor set-membership scan.

Child views returned by the extraction kernels are *canonical*: identical
(arrays and node order) to what :func:`build_csr` would build from the
child's adjacency sets, so they can be cached on the child graph directly.
Callers that rely on the warm view include the batched cost evaluators
(:class:`repro.hashing.batch.BatchCostEvaluatorBase` subclasses) and the
``use_csr`` fast paths of ``Graph.induced_subgraph`` /
``Graph.subgraph_degrees_within`` / ``Graph.relabeled``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import GraphError
from repro.types import NodeId


@dataclass(frozen=True)
class GraphCSR:
    """Immutable array view of a graph (see the module docstring)."""

    node_ids: List[NodeId]
    indptr: np.ndarray
    indices: np.ndarray
    degrees: np.ndarray
    edge_sources: np.ndarray = field(repr=False)
    #: Inverse of ``node_ids``, built lazily via :attr:`position` (extraction
    #: produces many short-lived child views whose inverse is never needed).
    _position: Dict[NodeId, int] = field(default=None, repr=False)
    #: Lazily cached flag for the common root-instance layout where
    #: ``node_ids[i] == i``, letting position lookups skip the dict entirely.
    _ids_are_positions: bool = field(default=None, repr=False)

    @property
    def position(self) -> Dict[NodeId, int]:
        """``position[node] == i`` iff ``node_ids[i] == node`` (cached)."""
        mapping = self._position
        if mapping is None:
            mapping = {node: index for index, node in enumerate(self.node_ids)}
            object.__setattr__(self, "_position", mapping)
        return mapping

    @property
    def ids_are_positions(self) -> bool:
        """Whether ``node_ids[i] == i`` for all ``i`` (cached)."""
        cached = self._ids_are_positions
        if cached is None:
            try:
                ids = np.asarray(self.node_ids, dtype=np.int64)
                cached = bool(
                    np.array_equal(ids, np.arange(ids.shape[0], dtype=np.int64))
                )
            except (OverflowError, TypeError):
                cached = False
            object.__setattr__(self, "_ids_are_positions", cached)
        return cached

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.shape[0])


def index_dtype(num_nodes: int) -> type:
    """Position dtype for an instance of ``num_nodes`` nodes.

    Positions live in ``[0, num_nodes)``; int32 halves the bytes of the
    memory-bound edge gathers whenever it fits, int64 is the
    overflow-guarded promotion beyond ``2**31 - 1`` nodes (the dtype policy
    in ``docs/ARCHITECTURE.md``).  Key sorts over ``source * n + target``
    always run in int64 regardless — the *combined* key overflows int32
    long before the positions do.
    """
    return np.int32 if num_nodes <= np.iinfo(np.int32).max else np.int64


def build_csr(adjacency: Dict[NodeId, "set"]) -> GraphCSR:
    """Build a :class:`GraphCSR` from an adjacency-set mapping.

    For ``n`` nodes and ``m`` undirected edges the view holds ``node_ids``
    of length ``n``, ``indptr`` of shape ``(n + 1,)``, and ``indices`` /
    ``edge_sources`` of shape ``(2m,)`` (one entry per *directed* edge,
    :func:`index_dtype`-narrowed).  Neighbor lists are sorted by
    *position* so the layout is deterministic for a given insertion order
    (the batched and scalar cost paths then traverse edges in a fixed
    order).
    """
    node_ids = list(adjacency)
    position = {node: index for index, node in enumerate(node_ids)}
    num_nodes = len(node_ids)
    dtype = index_dtype(num_nodes)
    degrees = np.fromiter(
        (len(adjacency[node]) for node in node_ids), dtype=np.int64, count=num_nodes
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    edge_sources = np.repeat(np.arange(num_nodes, dtype=dtype), degrees)
    # One flat pass over the adjacency sets (dict order == node order), then
    # a single C-level sort of (source, target) keys instead of a Python
    # ``sorted`` per node: groups stay contiguous and targets end up sorted
    # within each group.
    flat = [
        position[neighbor] for node in node_ids for neighbor in adjacency[node]
    ]
    indices = np.asarray(flat, dtype=dtype)
    if num_nodes and indices.shape[0]:
        keys = np.sort(
            edge_sources.astype(np.int64) * num_nodes + indices.astype(np.int64)
        )
        indices = (keys % num_nodes).astype(dtype)
    return GraphCSR(
        node_ids=node_ids,
        indptr=indptr,
        indices=indices,
        degrees=degrees,
        edge_sources=edge_sources,
        _position=position,
    )


def _positions_of(csr: GraphCSR, node_ids: Sequence[NodeId]) -> np.ndarray:
    """Parent positions of ``node_ids`` as an int64 array (ids must exist)."""
    if csr.ids_are_positions:
        return np.asarray(node_ids, dtype=np.int64)
    position = csr.position
    return np.fromiter(
        (position[node] for node in node_ids), dtype=np.int64, count=len(node_ids)
    )


def _assemble_child(
    node_ids: Sequence[NodeId], rows: np.ndarray, targets: np.ndarray
) -> GraphCSR:
    """Canonical child CSR from its directed edge list in child positions.

    ``rows[j]`` / ``targets[j]`` are the child positions of the endpoints of
    one directed edge.  One flat key sort restores the :func:`build_csr`
    layout (rows contiguous, targets sorted within each run), so the result
    is exactly what ``build_csr`` would produce from the child's adjacency
    sets — safe to cache on the child graph.
    """
    num_nodes = len(node_ids)
    dtype = index_dtype(num_nodes)
    degrees = np.bincount(rows, minlength=num_nodes).astype(np.int64, copy=False)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    if rows.shape[0]:
        keys = np.sort(
            rows.astype(np.int64) * num_nodes + targets.astype(np.int64)
        )
        indices = (keys % num_nodes).astype(dtype)
    else:
        indices = np.zeros(0, dtype=dtype)
    edge_sources = np.repeat(np.arange(num_nodes, dtype=dtype), degrees)
    return GraphCSR(
        node_ids=list(node_ids),
        indptr=indptr,
        indices=indices,
        degrees=degrees,
        edge_sources=edge_sources,
    )


def gather_segments(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row lengths and a flat gather index concatenating CSR segments.

    ``indptr`` is any CSR-style boundary array and ``rows`` the segment
    indices to concatenate (in caller order, repeats allowed).  Returns
    ``(lengths, gather)`` where ``lengths[i]`` is the size of segment
    ``rows[i]`` and ``gather`` indexes the flat data array so that
    ``data[gather]`` lists the requested segments back to back.  Shared by
    the neighbor-run gathers here and the palette-slice gathers of
    :mod:`repro.graph.palettes` (same layout, different payload).
    """
    rows = np.asarray(rows, dtype=np.int64)
    num_rows = rows.shape[0]
    if not num_rows:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    lengths = indptr[rows + 1] - indptr[rows]
    total = int(lengths.sum())
    if not total:
        return lengths, np.zeros(0, dtype=np.int64)
    starts = indptr[rows]
    run_ends = np.cumsum(lengths)
    gather = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (run_ends - lengths), lengths
    )
    return lengths, gather


def _gather_rows(
    csr: GraphCSR, old_positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the neighbor runs of ``old_positions`` in one gather.

    Returns ``(rows, neighbor_positions)``: for every directed edge leaving
    one of the requested rows, the *local* row index (0-based within
    ``old_positions``) and the parent position of the neighbor.
    """
    lengths, gather = gather_segments(csr.indptr, old_positions)
    if not gather.shape[0]:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    rows = np.repeat(np.arange(old_positions.shape[0], dtype=np.int64), lengths)
    return rows, csr.indices[gather]


def extract_induced(csr: GraphCSR, kept_ids: Sequence[NodeId]) -> GraphCSR:
    """The induced-subgraph view of ``kept_ids`` as one mask/gather/reindex.

    ``kept_ids`` must be distinct identifiers present in ``csr`` (callers
    filter unknown ids first); their order becomes the child's node order.
    The kernel gathers only the kept rows' neighbor runs, drops neighbors
    outside the subset with one reindex lookup, and assembles a canonical
    child view (``len(kept_ids)`` nodes) — no per-neighbor Python set
    membership tests.  Scalar reference:
    ``Graph._induced_from_keep`` (the per-neighbor loop behind
    ``Graph.induced_subgraph(..., use_csr=False)``); the child equals what
    :func:`build_csr` would produce from that graph's adjacency sets.
    """
    old_positions = _positions_of(csr, kept_ids)
    new_of_old = np.full(csr.num_nodes, -1, dtype=np.int64)
    new_of_old[old_positions] = np.arange(len(kept_ids), dtype=np.int64)
    rows, neighbor_positions = _gather_rows(csr, old_positions)
    neighbors = new_of_old[neighbor_positions]
    inside = neighbors >= 0
    return _assemble_child(kept_ids, rows[inside], neighbors[inside])


def split_by_bins(
    csr: GraphCSR, groups: Sequence[Iterable[NodeId]]
) -> List[GraphCSR]:
    """Child views for all (disjoint) node groups of one partition level.

    The batched counterpart of calling :func:`extract_induced` per bin: one
    label scatter and one reindex scatter cover the whole level, then each
    child gathers only its own members' neighbor runs, keeps the same-label
    edges, and key-sorts its own (much smaller) edge set into the canonical
    layout — total work one pass over the level's directed edges plus the
    per-child sorts.  Returns ``len(groups)`` child views; group order
    defines the children's order, and each group's id order defines its
    child's node order.  Scalar reference: one
    ``Graph._induced_from_keep`` call per group
    (``Graph.induced_subgraphs(..., use_csr=False)``).  Raises
    :class:`~repro.errors.GraphError` if the groups overlap (or a group
    repeats an id) — a label scatter cannot represent overlapping bins.
    """
    group_ids: List[List[NodeId]] = [list(group) for group in groups]
    labels = np.full(csr.num_nodes, -1, dtype=np.int64)
    new_of_old = np.full(csr.num_nodes, -1, dtype=np.int64)
    group_positions: List[np.ndarray] = []
    total_members = 0
    for label, ids in enumerate(group_ids):
        positions = _positions_of(csr, ids)
        group_positions.append(positions)
        labels[positions] = label
        new_of_old[positions] = np.arange(len(ids), dtype=np.int64)
        total_members += len(ids)
    if total_members != int((labels >= 0).sum()):
        raise GraphError("split_by_bins groups must be disjoint")
    children: List[GraphCSR] = []
    for label, (ids, positions) in enumerate(zip(group_ids, group_positions)):
        rows, neighbor_positions = _gather_rows(csr, positions)
        kept = np.flatnonzero(labels.take(neighbor_positions) == label)
        children.append(
            _assemble_child(
                ids,
                rows.take(kept),
                new_of_old.take(neighbor_positions.take(kept)),
            )
        )
    return children


def degrees_within(csr: GraphCSR, kept_ids: Sequence[NodeId]) -> np.ndarray:
    """Induced-subgraph degrees of ``kept_ids`` (aligned with its order).

    Returns an int64 array of shape ``(len(kept_ids),)``.  One membership
    mask plus one bincount over the directed edges whose endpoints both lie
    in the subset — the vectorized replacement for the per-neighbor
    set-membership scan of the scalar
    ``Graph.subgraph_degrees_within(..., use_csr=False)`` path.
    """
    old_positions = _positions_of(csr, kept_ids)
    mask = np.zeros(csr.num_nodes, dtype=bool)
    mask[old_positions] = True
    inside = mask[csr.edge_sources] & mask[csr.indices]
    counts = np.bincount(
        csr.edge_sources[inside], minlength=csr.num_nodes
    ).astype(np.int64, copy=False)
    return counts[old_positions]
