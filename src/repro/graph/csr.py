"""Array ("CSR") view of a :class:`repro.graph.graph.Graph`.

The batched cost kernels (:mod:`repro.core.classification`,
:mod:`repro.core.low_space.machine_sets`) need the graph as flat arrays so
in-bin degrees, bin sizes and bad-node counts become
``np.bincount``/scatter operations instead of per-node Python loops.  This
module provides that view:

* ``node_ids[i]`` — the graph's (arbitrary integer) node identifiers in
  insertion order; ``position[node] == i`` inverts it,
* ``indptr`` / ``indices`` — the usual CSR layout: the neighbors of the
  node at position ``i`` sit at positions ``indices[indptr[i]:indptr[i+1]]``
  (values are *positions*, not identifiers),
* ``degrees[i]`` — ``len`` of that slice,
* ``edge_sources`` — position of the source node of every directed edge,
  aligned with ``indices`` (i.e. ``repeat(arange(n), degrees)``), so
  "count neighbors in the same bin" is one boolean compare plus one
  bincount over ``edge_sources``.

Views are built once per graph and cached on the instance
(:meth:`repro.graph.graph.Graph.csr`); any mutation invalidates the cache.
The view itself is immutable and shares nothing with the adjacency sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.types import NodeId


@dataclass(frozen=True)
class GraphCSR:
    """Immutable array view of a graph (see the module docstring)."""

    node_ids: List[NodeId]
    position: Dict[NodeId, int]
    indptr: np.ndarray
    indices: np.ndarray
    degrees: np.ndarray
    edge_sources: np.ndarray = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.shape[0])


def build_csr(adjacency: Dict[NodeId, "set"]) -> GraphCSR:
    """Build a :class:`GraphCSR` from an adjacency-set mapping.

    Neighbor lists are sorted by *position* so the layout is deterministic
    for a given insertion order (the batched and scalar cost paths then
    traverse edges in a fixed order).
    """
    node_ids = list(adjacency)
    position = {node: index for index, node in enumerate(node_ids)}
    num_nodes = len(node_ids)
    degrees = np.fromiter(
        (len(adjacency[node]) for node in node_ids), dtype=np.int64, count=num_nodes
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    edge_sources = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    # One flat pass over the adjacency sets (dict order == node order), then
    # a single C-level sort of (source, target) keys instead of a Python
    # ``sorted`` per node: groups stay contiguous and targets end up sorted
    # within each group.
    flat = [
        position[neighbor] for node in node_ids for neighbor in adjacency[node]
    ]
    indices = np.asarray(flat, dtype=np.int64)
    if num_nodes and indices.shape[0]:
        keys = np.sort(edge_sources * num_nodes + indices)
        indices = keys % num_nodes
    return GraphCSR(
        node_ids=node_ids,
        position=position,
        indptr=indptr,
        indices=indices,
        degrees=degrees,
        edge_sources=edge_sources,
    )
