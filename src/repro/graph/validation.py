"""Validation of colorings produced by the algorithms.

Every experiment and every test validates its output with these helpers; the
library never reports success on an improper coloring.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ColoringError
from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.types import ColoringMap, NodeId


def find_coloring_violation(
    graph: Graph, coloring: ColoringMap
) -> Optional[Tuple[NodeId, NodeId]]:
    """Return a monochromatic edge if one exists, otherwise ``None``.

    A node missing from ``coloring`` counts as a violation and is reported as
    the pseudo-edge ``(node, node)``.
    """
    for node in graph.nodes():
        if node not in coloring:
            return (node, node)
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            return (u, v)
    return None


def is_proper_coloring(graph: Graph, coloring: ColoringMap) -> bool:
    """Whether ``coloring`` assigns every node a color and no edge is
    monochromatic."""
    return find_coloring_violation(graph, coloring) is None


def assert_proper_coloring(graph: Graph, coloring: ColoringMap) -> None:
    """Raise :class:`ColoringError` unless the coloring is proper and total."""
    violation = find_coloring_violation(graph, coloring)
    if violation is None:
        return
    u, v = violation
    if u == v:
        raise ColoringError(f"node {u} is uncolored")
    raise ColoringError(
        f"edge ({u}, {v}) is monochromatic: both endpoints have color {coloring[u]}"
    )


def find_palette_violations(
    palettes: PaletteAssignment, coloring: ColoringMap
) -> List[NodeId]:
    """Nodes whose assigned color is not in their palette."""
    return [
        node
        for node, color in coloring.items()
        if node in palettes and not palettes.contains_color(node, color)
    ]


def is_valid_list_coloring(
    graph: Graph, palettes: PaletteAssignment, coloring: ColoringMap
) -> bool:
    """Whether ``coloring`` is proper *and* respects every node's palette."""
    if not is_proper_coloring(graph, coloring):
        return False
    return not find_palette_violations(palettes, coloring)


def assert_valid_list_coloring(
    graph: Graph, palettes: PaletteAssignment, coloring: ColoringMap
) -> None:
    """Raise :class:`ColoringError` unless the list coloring is valid.

    "Valid" means: every node of the graph is colored, no edge is
    monochromatic, and every node's color comes from its own palette — the
    definition of (Δ+1)-list / (deg+1)-list coloring in Section 1 of the
    paper.
    """
    assert_proper_coloring(graph, coloring)
    offenders = find_palette_violations(palettes, coloring)
    if offenders:
        node = offenders[0]
        raise ColoringError(
            f"node {node} was assigned color {coloring[node]}, "
            f"which is not in its palette"
        )


def count_colors_used(coloring: ColoringMap) -> int:
    """Number of distinct colors used by a coloring."""
    return len(set(coloring.values()))
