"""Undirected simple graph used throughout the reproduction.

The congested-clique and MPC simulators, the coloring algorithms and the
baselines all operate on this structure.  It is intentionally small: an
adjacency-set representation with the handful of operations the paper's
algorithms actually need (degrees, induced subgraphs, size accounting),
plus a cached array view (:meth:`Graph.csr`) for the batched cost kernels.

Nodes are arbitrary hashable integers; they do *not* need to be contiguous,
because recursive calls of ``ColorReduce`` operate on induced subgraphs that
keep the original node identifiers (the paper's hash function ``h1`` maps the
*global* identifier space ``[n]`` to bins).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.types import Edge, NodeId


class Graph:
    """An undirected simple graph stored as adjacency sets.

    Parameters
    ----------
    nodes:
        Optional iterable of node identifiers to pre-insert (isolated nodes
        are meaningful for coloring: they still need a color).
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self-loops are rejected;
        parallel edges are collapsed.
    """

    __slots__ = ("_adj", "_csr")

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        self._csr = None
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Insert ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()
            self._csr = None

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Insert the undirected edge ``{u, v}``, adding endpoints as needed."""
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if v in self._adj.get(u, ()):
            return  # already present: keep the cached CSR view valid
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._csr = None

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], nodes: Iterable[NodeId] = ()) -> "Graph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        return cls(nodes=nodes, edges=edges)

    @classmethod
    def complete(cls, n: int) -> "Graph":
        """The complete graph on nodes ``0..n-1``."""
        graph = cls(nodes=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """The edgeless graph on nodes ``0..n-1``."""
        return cls(nodes=range(n))

    def copy(self) -> "Graph":
        """An independent deep copy of this graph."""
        clone = Graph()
        clone._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def nodes(self) -> List[NodeId]:
        """All node identifiers (in insertion order)."""
        return list(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u, neigh in self._adj.items():
            for v in neigh:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return v in self._adj.get(u, ())

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """The neighbor set of ``node`` (a live view is never exposed)."""
        try:
            return set(self._adj[node])
        except KeyError as exc:
            raise GraphError(f"unknown node {node}") from exc

    def iter_neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over the neighbors of ``node`` without copying the set.

        The no-copy counterpart of :meth:`neighbors` for hot loops that only
        scan (classification, palette updates, MIS sweeps).  The iterator
        reads the live adjacency set: do not mutate the graph while holding
        it.
        """
        try:
            return iter(self._adj[node])
        except KeyError as exc:
            raise GraphError(f"unknown node {node}") from exc

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError as exc:
            raise GraphError(f"unknown node {node}") from exc

    def degrees(self) -> Dict[NodeId, int]:
        """Mapping from node to degree."""
        return {node: len(neigh) for node, neigh in self._adj.items()}

    def max_degree(self) -> int:
        """The maximum degree Δ (0 for an empty or edgeless graph)."""
        if not self._adj:
            return 0
        return max(len(neigh) for neigh in self._adj.values())

    def size(self) -> int:
        """The paper's notion of instance *size*: ``num_nodes + num_edges``.

        Lemma 3.14 argues the graph induced by each bin reaches size ``O(n)``;
        this is the quantity ``ColorReduce`` compares against its collection
        threshold.
        """
        return self.num_nodes + self.num_edges

    def csr(self):
        """The cached array ("CSR") view of this graph.

        Built on first use and invalidated by :meth:`add_node` /
        :meth:`add_edge`; see :mod:`repro.graph.csr`.  The batched cost
        kernels use it to turn per-node classification loops into
        ``np.bincount``/scatter operations.
        """
        if self._csr is None:
            from repro.graph.csr import build_csr

            self._csr = build_csr(self._adj)
        return self._csr

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """The subgraph induced by ``nodes`` (unknown ids are ignored)."""
        keep = {node for node in nodes if node in self._adj}
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep and u < v:
                    sub.add_edge(u, v)
        return sub

    def subgraph_degrees_within(self, nodes: Iterable[NodeId]) -> Dict[NodeId, int]:
        """Degrees restricted to the induced subgraph, without building it.

        This is the quantity ``d'(v)`` of Definition 3.1 (degree within the
        bin of ``v``) and is needed when classifying good/bad nodes before
        materialising the bin subgraphs.
        """
        keep = {node for node in nodes if node in self._adj}
        return {u: sum(1 for v in self._adj[u] if v in keep) for u in keep}

    def connected_components(self) -> List[Set[NodeId]]:
        """Connected components as a list of node sets (iterative BFS)."""
        seen: Set[NodeId] = set()
        components: List[Set[NodeId]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                for neigh in self._adj[node]:
                    if neigh not in seen:
                        seen.add(neigh)
                        component.add(neigh)
                        frontier.append(neigh)
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def relabeled(self) -> Tuple["Graph", Dict[NodeId, NodeId]]:
        """Return a copy with nodes relabeled ``0..n-1`` plus the mapping.

        The mapping sends *original* ids to *new* ids.  Useful for handing
        instances to array-based baselines.
        """
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabeled = Graph(nodes=mapping.values())
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Histogram mapping degree value to the number of nodes with it."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Average degree (0.0 for an empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes
