"""Undirected simple graph used throughout the reproduction.

The congested-clique and MPC simulators, the coloring algorithms and the
baselines all operate on this structure.  It is intentionally small: an
adjacency-set representation with the handful of operations the paper's
algorithms actually need (degrees, induced subgraphs, size accounting),
plus a cached array view (:meth:`Graph.csr`) for the batched cost kernels.

Nodes are arbitrary hashable integers; they do *not* need to be contiguous,
because recursive calls of ``ColorReduce`` operate on induced subgraphs that
keep the original node identifiers (the paper's hash function ``h1`` maps the
*global* identifier space ``[n]`` to bins).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.types import Edge, NodeId


class Graph:
    """An undirected simple graph stored as adjacency sets.

    Parameters
    ----------
    nodes:
        Optional iterable of node identifiers to pre-insert (isolated nodes
        are meaningful for coloring: they still need a color).
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self-loops are rejected;
        parallel edges are collapsed.
    """

    __slots__ = ("_adj_store", "_csr")

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj_store: Optional[Dict[NodeId, Set[NodeId]]] = {}
        self._csr = None
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # adjacency storage (materialised lazily for CSR-extracted graphs)
    # ------------------------------------------------------------------
    @property
    def _adj(self) -> Dict[NodeId, Set[NodeId]]:
        """The adjacency-set mapping, materialised on first access.

        Graphs built by :meth:`_from_csr` start with only their (canonical)
        array view; the adjacency sets are reconstructed from it the first
        time any set-based operation needs them.  Structural queries
        (``num_nodes``, ``num_edges``, ``degree``, ``nodes`` ...) answer
        straight from the view, so e.g. empty bin instances and recursion
        statistics never pay for materialisation.
        """
        adj = self._adj_store
        if adj is None:
            adj = self._materialize_adjacency()
        return adj

    @_adj.setter
    def _adj(self, value: Dict[NodeId, Set[NodeId]]) -> None:
        self._adj_store = value

    def _materialize_adjacency(self) -> Dict[NodeId, Set[NodeId]]:
        view = self._csr
        if view is None:  # pragma: no cover - _from_csr always sets the view
            raise GraphError("graph has neither adjacency sets nor a CSR view")
        import numpy as np

        node_ids = view.node_ids
        try:
            mapped = np.asarray(node_ids, dtype=np.int64)[view.indices].tolist()
        except (OverflowError, TypeError):
            # Ids beyond int64 (or oddly typed): fall back to Python lookups.
            mapped = [node_ids[j] for j in view.indices.tolist()]
        bounds = view.indptr.tolist()
        adj: Dict[NodeId, Set[NodeId]] = {}
        start = 0
        for node, end in zip(node_ids, bounds[1:]):
            adj[node] = set(mapped[start:end])
            start = end
        self._adj_store = adj
        return adj

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Insert ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()
            self._csr = None

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Insert the undirected edge ``{u, v}``, adding endpoints as needed."""
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if v in self._adj.get(u, ()):
            return  # already present: keep the cached CSR view valid
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._csr = None

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], nodes: Iterable[NodeId] = ()) -> "Graph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        return cls(nodes=nodes, edges=edges)

    @classmethod
    def complete(cls, n: int) -> "Graph":
        """The complete graph on nodes ``0..n-1``."""
        graph = cls(nodes=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """The edgeless graph on nodes ``0..n-1``."""
        return cls(nodes=range(n))

    def copy(self) -> "Graph":
        """An independent deep copy of this graph."""
        clone = Graph()
        clone._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        if self._adj_store is None:
            return node in self._csr.position
        return node in self._adj_store

    def __len__(self) -> int:
        if self._adj_store is None:
            return self._csr.num_nodes
        return len(self._adj_store)

    def __iter__(self) -> Iterator[NodeId]:
        if self._adj_store is None:
            return iter(self._csr.node_ids)
        return iter(self._adj_store)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        if self._adj_store is None:
            return self._csr.num_directed_edges // 2
        return sum(len(neigh) for neigh in self._adj_store.values()) // 2

    def nodes(self) -> List[NodeId]:
        """All node identifiers (in insertion order)."""
        if self._adj_store is None:
            return list(self._csr.node_ids)
        return list(self._adj_store)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v)`` with ``u < v``.

        On a lazily-backed graph (:meth:`_from_csr`) the edges are read
        straight off the array view, so consumers such as the MIS reduction
        (:mod:`repro.core.low_space.mis_reduction`) never force adjacency
        materialisation.  Iteration *order* may differ between the two
        backings; the edge *set* is identical.
        """
        if self._adj_store is None:
            view = self._csr
            ids = view.node_ids
            sources = view.edge_sources.tolist()
            targets = view.indices.tolist()
            for i, j in zip(sources, targets):
                u, v = ids[i], ids[j]
                if u < v:
                    yield (u, v)
            return
        for u, neigh in self._adj_store.items():
            for v in neigh:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return v in self._adj.get(u, ())

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """The neighbor set of ``node`` (a live view is never exposed)."""
        try:
            return set(self._adj[node])
        except KeyError as exc:
            raise GraphError(f"unknown node {node}") from exc

    def iter_neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over the neighbors of ``node`` without copying the set.

        The no-copy counterpart of :meth:`neighbors` for hot loops that only
        scan (classification, palette updates, MIS sweeps).  On a
        lazily-backed graph (:meth:`_from_csr`) the neighbor run is read
        straight off the array view, so scanning consumers — the greedy
        local coloring, palette updates, the MIS sweeps — never force
        adjacency materialisation.  Iteration *order* may differ between the
        two backings; the neighbor *set* is identical.  The iterator reads
        live storage: do not mutate the graph while holding it.
        """
        if self._adj_store is None:
            view = self._csr
            try:
                pos = view.position[node]
            except KeyError as exc:
                raise GraphError(f"unknown node {node}") from exc
            ids = view.node_ids
            run = view.indices[view.indptr[pos] : view.indptr[pos + 1]].tolist()
            return (ids[j] for j in run)
        try:
            return iter(self._adj_store[node])
        except KeyError as exc:
            raise GraphError(f"unknown node {node}") from exc

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        if self._adj_store is None:
            view = self._csr
            try:
                return int(view.degrees[view.position[node]])
            except KeyError as exc:
                raise GraphError(f"unknown node {node}") from exc
        try:
            return len(self._adj_store[node])
        except KeyError as exc:
            raise GraphError(f"unknown node {node}") from exc

    def degrees(self) -> Dict[NodeId, int]:
        """Mapping from node to degree."""
        if self._adj_store is None:
            view = self._csr
            return {
                node: int(degree)
                for node, degree in zip(view.node_ids, view.degrees)
            }
        return {node: len(neigh) for node, neigh in self._adj_store.items()}

    def max_degree(self) -> int:
        """The maximum degree Δ (0 for an empty or edgeless graph)."""
        if self._adj_store is None:
            view = self._csr
            return int(view.degrees.max()) if view.num_nodes else 0
        if not self._adj_store:
            return 0
        return max(len(neigh) for neigh in self._adj_store.values())

    def size(self) -> int:
        """The paper's notion of instance *size*: ``num_nodes + num_edges``.

        Lemma 3.14 argues the graph induced by each bin reaches size ``O(n)``;
        this is the quantity ``ColorReduce`` compares against its collection
        threshold.
        """
        return self.num_nodes + self.num_edges

    def csr(self):
        """The cached array ("CSR") view of this graph.

        Built on first use and invalidated by :meth:`add_node` /
        :meth:`add_edge`; see :mod:`repro.graph.csr` for the full
        array-view contract.  The batched cost kernels use it to turn
        per-node classification loops into ``np.bincount``/scatter
        operations, and the ``use_csr`` fast paths of
        :meth:`induced_subgraph` / :meth:`subgraph_degrees_within` /
        :meth:`relabeled` extract subgraphs from it without per-neighbor
        set lookups.  Subgraphs produced by those fast paths carry their
        own (canonical) warm view.
        """
        if self._csr is None:
            from repro.graph.csr import build_csr

            self._csr = build_csr(self._adj)
        return self._csr

    def has_csr(self) -> bool:
        """Whether the array view is currently warm (built, not invalidated).

        The probe behind every ``use_csr=None`` / ``use_batch=None`` auto
        mode (here and in :func:`repro.core.local_coloring.greedy_list_coloring`):
        consumers take the array path iff it is free to take.
        """
        return self._csr is not None

    def _resolve_use_csr(self, use_csr: Optional[bool]) -> bool:
        """``None`` means auto: take the array path iff the view is warm."""
        if use_csr is None:
            return self._csr is not None
        return use_csr

    def _members_for_filter(self):
        """A membership container over the node set, cheapest available.

        Used by the extraction methods to filter unknown ids without
        forcing a lazy graph to materialise its adjacency sets — the CSR
        view's position map answers membership just as well.
        """
        adj = self._adj_store
        if adj is None:
            return self._csr.position
        return adj

    @classmethod
    def _from_csr(cls, view) -> "Graph":
        """A graph backed by a canonical CSR view (adjacency sets deferred).

        The view must be canonical (node order == intended insertion order,
        neighbor runs sorted — what the extraction kernels produce), so the
        cached view is indistinguishable from one rebuilt from ``_adj``.
        Adjacency sets are materialised lazily on first set-based access
        (see :attr:`_adj`); purely structural queries are answered from the
        view directly.
        """
        graph = cls()
        graph._adj_store = None
        graph._csr = view
        return graph

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, nodes: Iterable[NodeId], use_csr: Optional[bool] = None
    ) -> "Graph":
        """The subgraph induced by ``nodes`` (unknown ids are ignored).

        ``use_csr`` selects the extraction path: ``None`` (default) uses the
        vectorized CSR kernel iff the array view is already warm, ``True``
        forces it (building the view if needed), ``False`` forces the scalar
        reference loop.  Both paths produce the same graph — same node
        insertion order, same adjacency sets — and the CSR path additionally
        hands the child a warm canonical view.
        """
        members = self._members_for_filter()
        keep = {node for node in nodes if node in members}
        if self._resolve_use_csr(use_csr):
            from repro.graph.csr import extract_induced

            return Graph._from_csr(extract_induced(self.csr(), list(keep)))
        return self._induced_from_keep(keep)

    def _induced_from_keep(self, keep: Set[NodeId]) -> "Graph":
        """Scalar reference extraction from an already-filtered node set."""
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep and u < v:
                    sub.add_edge(u, v)
        return sub

    def induced_subgraphs(
        self, groups: Sequence[Iterable[NodeId]], use_csr: Optional[bool] = None
    ) -> List["Graph"]:
        """Induced subgraphs of several *disjoint* node groups in one pass.

        The batched form of :meth:`induced_subgraph` used by the partition
        pipelines to slice every bin instance of a level at once
        (:func:`repro.graph.csr.split_by_bins`).  With ``use_csr`` resolving
        to False each group goes through the scalar reference path instead;
        results are identical either way.  Unknown ids are ignored; groups
        must not overlap on the CSR path (:class:`~repro.errors.GraphError`).
        """
        members = self._members_for_filter()
        keeps = [{node for node in group if node in members} for group in groups]
        if not self._resolve_use_csr(use_csr):
            return [self._induced_from_keep(keep) for keep in keeps]
        from repro.graph.csr import split_by_bins

        children = split_by_bins(self.csr(), [list(keep) for keep in keeps])
        return [Graph._from_csr(child) for child in children]

    def subgraph_degrees_within(
        self, nodes: Iterable[NodeId], use_csr: Optional[bool] = None
    ) -> Dict[NodeId, int]:
        """Degrees restricted to the induced subgraph, without building it.

        This is the quantity ``d'(v)`` of Definition 3.1 (degree within the
        bin of ``v``) and is needed when classifying good/bad nodes before
        materialising the bin subgraphs.  With a warm CSR view (or
        ``use_csr=True``) the counts come from one membership mask plus one
        bincount (:func:`repro.graph.csr.degrees_within`) instead of a
        per-neighbor set-membership scan.
        """
        members = self._members_for_filter()
        keep = {node for node in nodes if node in members}
        if self._resolve_use_csr(use_csr):
            from repro.graph.csr import degrees_within

            kept_ids = list(keep)
            counts = degrees_within(self.csr(), kept_ids)
            return {node: int(count) for node, count in zip(kept_ids, counts)}
        return {u: sum(1 for v in self._adj[u] if v in keep) for u in keep}

    def connected_components(self) -> List[Set[NodeId]]:
        """Connected components as a list of node sets (iterative BFS)."""
        seen: Set[NodeId] = set()
        components: List[Set[NodeId]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                for neigh in self._adj[node]:
                    if neigh not in seen:
                        seen.add(neigh)
                        component.add(neigh)
                        frontier.append(neigh)
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def relabeled(
        self, use_csr: Optional[bool] = None
    ) -> Tuple["Graph", Dict[NodeId, NodeId]]:
        """Return a copy with nodes relabeled ``0..n-1`` plus the mapping.

        The mapping sends *original* ids to *new* ids (insertion order).
        Useful for handing instances to array-based baselines.  With a warm
        CSR view the relabeled graph is the view itself re-captioned —
        positions *are* the new ids — so no edge iteration happens at all.
        """
        if self._resolve_use_csr(use_csr):
            from repro.graph.csr import GraphCSR

            view = self.csr()
            num_nodes = view.num_nodes
            relabeled_view = GraphCSR(
                node_ids=list(range(num_nodes)),
                indptr=view.indptr,
                indices=view.indices,
                degrees=view.degrees,
                edge_sources=view.edge_sources,
            )
            return Graph._from_csr(relabeled_view), dict(view.position)
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabeled = Graph(nodes=mapping.values())
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Histogram mapping degree value to the number of nodes with it."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Average degree (0.0 for an empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes
