"""Graph input parsing shared by the CLI and the service layer.

One edge-list dialect, one parser, two front ends: the CLI's
``--edge-list PATH`` and the service's ``edge_list`` submission field both
funnel through :func:`parse_edge_list`, so every hardening rule —
malformed tokens, negative endpoints, self-loops, empty inputs — is
enforced identically and every error message names ``source:lineno`` so it
is actionable whichever door the graph came in through.

Format: one ``u v`` pair of non-negative integers per line; blank lines
and ``#`` comments are ignored.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.graph.graph import Graph


def parse_edge_list(lines: Iterable[str], source: str) -> Graph:
    """Parse edge-list ``lines`` into a :class:`~repro.graph.graph.Graph`.

    ``source`` names the input in error messages (a file path for the CLI,
    a request-field label for the service).  Every malformed line raises a
    :class:`ConfigurationError` carrying ``source:lineno``; self-loops are
    rejected (a node cannot constrain its own color) and an input with no
    edges at all is an error rather than an empty graph.
    """
    edges = []
    nodes = set()
    for lineno, line in enumerate(lines, start=1):
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        parts = text.split()
        if len(parts) != 2:
            raise ConfigurationError(
                f"{source}:{lineno}: expected 'u v', got {text!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            raise ConfigurationError(
                f"{source}:{lineno}: endpoints must be integers, got {text!r}"
            ) from None
        if u < 0 or v < 0:
            raise ConfigurationError(
                f"{source}:{lineno}: endpoints must be non-negative, got {text!r}"
            )
        if u == v:
            raise ConfigurationError(
                f"{source}:{lineno}: self-loop {u}-{v} is not a valid edge"
            )
        edges.append((u, v))
        nodes.add(u)
        nodes.add(v)
    if not edges:
        raise ConfigurationError(f"{source}: no edges found")
    return Graph.from_edges(edges, nodes=sorted(nodes))


def load_edge_list_file(path: str, flag: str = "--edge-list") -> Graph:
    """Read and parse an edge-list file (the CLI's ``--edge-list`` source)."""
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"{flag} {path}: {exc.strerror or exc}") from exc
    with handle:
        return parse_edge_list(handle, source=path)
