"""Synthetic graph and palette generators (the reproduction's workloads).

The paper's model is purely theoretical and its evaluation is analytic, so
the reproduction uses synthetic graphs to exercise the algorithms.  The
generators here cover the regimes the analysis cares about:

* dense random graphs (``Δ = Θ(n)``) — the regime where the congested-clique
  input has size ``Θ(n Δ) = Θ(n^2)`` and recursion/collection matters,
* sparse random graphs (``Δ = O(polylog n)``) — the regime where instances
  are immediately of size ``O(n)``,
* structured graphs (complete multipartite, ring-of-cliques, power-law) that
  stress particular aspects (bin skew, high-degree tails),
* list-coloring palette generators with shared or adversarially disjoint
  color universes (the reason the paper's ``h2`` needs domain ``[n^2]``).

All generators take an explicit ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.types import Color, NodeId


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


# ----------------------------------------------------------------------
# random graphs
# ----------------------------------------------------------------------
def erdos_renyi(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """Erdős–Rényi ``G(n, p)`` on nodes ``0..n-1``.

    Uses the standard geometric skipping technique so generation is
    ``O(n + m)`` rather than ``O(n^2)`` for sparse graphs.
    """
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be in [0, 1]")
    graph = Graph.empty(n)
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        return Graph.complete(n)
    rng = _rng(seed)
    import math

    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def gnm_random(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """A uniformly random graph with exactly ``n`` nodes and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ConfigurationError(f"cannot place {m} edges on {n} nodes (max {max_edges})")
    rng = _rng(seed)
    graph = Graph.empty(n)
    chosen: Set[Tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in chosen:
            continue
        chosen.add(edge)
        graph.add_edge(*edge)
    return graph


def random_regular_like(n: int, degree: int, seed: Optional[int] = None) -> Graph:
    """A near-regular random graph via a configuration-model style pairing.

    Multi-edges and self-loops produced by the pairing are dropped, so node
    degrees may fall slightly below ``degree``; this is fine for workload
    purposes (the coloring algorithms only need ``p(v) > d(v)``).
    """
    if degree >= n:
        raise ConfigurationError("degree must be smaller than n")
    rng = _rng(seed)
    stubs: List[int] = []
    for node in range(n):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)
    graph = Graph.empty(n)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def power_law(n: int, attachment: int = 3, seed: Optional[int] = None) -> Graph:
    """A Barabási–Albert style preferential-attachment graph.

    Produces a heavy-tailed degree distribution, useful for checking that a
    few very-high-degree nodes do not break the partition analysis.
    """
    if attachment < 1:
        raise ConfigurationError("attachment must be at least 1")
    if n <= attachment:
        return Graph.complete(max(n, 0))
    rng = _rng(seed)
    graph = Graph.complete(attachment + 1)
    # Repeated-nodes list: the probability a node is chosen is proportional
    # to its degree.
    repeated: List[int] = []
    for node in range(attachment + 1):
        repeated.extend([node] * attachment)
    for new_node in range(attachment + 1, n):
        graph.add_node(new_node)
        targets: Set[int] = set()
        while len(targets) < attachment:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.append(target)
            repeated.append(new_node)
    return graph


def random_bipartite(
    left: int, right: int, p: float, seed: Optional[int] = None
) -> Graph:
    """Random bipartite graph with parts ``0..left-1`` and ``left..left+right-1``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be in [0, 1]")
    rng = _rng(seed)
    graph = Graph.empty(left + right)
    for u in range(left):
        for v in range(left, left + right):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# structured graphs
# ----------------------------------------------------------------------
def complete_multipartite(part_sizes: Sequence[int]) -> Graph:
    """Complete multipartite graph with the given part sizes."""
    graph = Graph.empty(sum(part_sizes))
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for size in part_sizes:
        boundaries.append((start, start + size))
        start += size
    for i, (a_start, a_end) in enumerate(boundaries):
        for b_start, b_end in boundaries[i + 1 :]:
            for u in range(a_start, a_end):
                for v in range(b_start, b_end):
                    graph.add_edge(u, v)
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """``num_cliques`` disjoint cliques of ``clique_size`` joined in a ring.

    A classic stress test: dense local structure with sparse global
    structure, so Δ is governed by the clique size.
    """
    if num_cliques < 1 or clique_size < 1:
        raise ConfigurationError("num_cliques and clique_size must be positive")
    n = num_cliques * clique_size
    graph = Graph.empty(n)
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(base + i, base + j)
    if num_cliques > 1:
        for c in range(num_cliques):
            u = c * clique_size
            v = ((c + 1) % num_cliques) * clique_size
            if u != v:
                graph.add_edge(u, v)
    return graph


def ring(n: int) -> Graph:
    """A simple cycle on ``n`` nodes (degree 2 everywhere)."""
    graph = Graph.empty(n)
    if n >= 2:
        for i in range(n):
            graph.add_edge(i, (i + 1) % n)
    return graph


def star(n: int) -> Graph:
    """A star with center 0 and ``n-1`` leaves (Δ = n-1)."""
    graph = Graph.empty(n)
    for leaf in range(1, n):
        graph.add_edge(0, leaf)
    return graph


# ----------------------------------------------------------------------
# palette generators for list coloring
# ----------------------------------------------------------------------
def shared_universe_palettes(
    graph: Graph,
    palette_size: Optional[int] = None,
    universe_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> PaletteAssignment:
    """Random (Δ+1)-list palettes drawn from a single shared universe.

    Each node receives ``palette_size`` (default ``Δ+1``) distinct colors
    drawn uniformly from a universe of ``universe_size`` colors (default
    ``2·(Δ+1)``).  Palettes of neighbors overlap heavily, which makes the
    instance genuinely harder than plain (Δ+1)-coloring.
    """
    rng = _rng(seed)
    delta = graph.max_degree()
    size = delta + 1 if palette_size is None else palette_size
    universe = 2 * (delta + 1) if universe_size is None else universe_size
    if universe < size:
        raise ConfigurationError("universe_size must be at least palette_size")
    colors = list(range(universe))
    palettes: Dict[NodeId, List[Color]] = {}
    for node in graph.nodes():
        palettes[node] = rng.sample(colors, size)
    return PaletteAssignment.from_lists(palettes)


def degree_plus_one_palettes(
    graph: Graph,
    universe_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> PaletteAssignment:
    """Random (deg+1)-list palettes (node ``v`` gets ``deg(v)+1`` colors)."""
    rng = _rng(seed)
    delta = graph.max_degree()
    universe = 2 * (delta + 1) if universe_size is None else universe_size
    colors = list(range(universe))
    palettes: Dict[NodeId, List[Color]] = {}
    for node in graph.nodes():
        need = graph.degree(node) + 1
        if need > universe:
            raise ConfigurationError(
                f"universe of {universe} colors too small for degree {need - 1}"
            )
        palettes[node] = rng.sample(colors, need)
    return PaletteAssignment.from_lists(palettes)


def adversarial_disjoint_palettes(
    graph: Graph, palette_size: Optional[int] = None, seed: Optional[int] = None
) -> PaletteAssignment:
    """List palettes drawn from a universe of size up to ``n^2``.

    Each node's palette is drawn from its own block of colors with partial
    overlap with neighbors' blocks.  This exercises the large color domain
    that forces the paper's ``h2`` hash function to have domain ``[n^2]``.
    """
    rng = _rng(seed)
    n = graph.num_nodes
    delta = graph.max_degree()
    size = delta + 1 if palette_size is None else palette_size
    palettes: Dict[NodeId, List[Color]] = {}
    for index, node in enumerate(graph.nodes()):
        block_start = index * size
        own_block = list(range(block_start, block_start + size))
        # Overlap: with probability 1/2 replace a color with one from a
        # neighbor's block so neighboring palettes intersect.
        neighbors = sorted(graph.neighbors(node))
        for i in range(len(own_block)):
            if neighbors and rng.random() < 0.5:
                other = rng.choice(neighbors)
                other_index = list(graph.nodes()).index(other) if False else other
                own_block[i] = (other_index % n) * size + rng.randrange(size)
        # Ensure the palette still has `size` distinct colors.
        distinct = list(dict.fromkeys(own_block))
        extra = block_start + size
        while len(distinct) < size:
            distinct.append(n * size + extra)
            extra += 1
        palettes[node] = distinct[:size]
    return PaletteAssignment.from_lists(palettes)
