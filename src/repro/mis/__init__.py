"""Maximal independent set (MIS) substrate.

Theorem 1.4 (low-space MPC) colors its low-degree leftover graph by reducing
(deg+1)-list coloring to MIS — Luby's classic reduction — and then running a
deterministic MIS algorithm (the paper uses the algorithm of Czumaj, Davies
and Parter, SPAA'20, as a black box).  This subpackage provides:

* :mod:`repro.mis.greedy` — sequential greedy MIS (ground truth / baseline),
* :mod:`repro.mis.luby` — Luby's randomized MIS with phase counting,
* :mod:`repro.mis.deterministic` — a derandomized Luby MIS: per phase, the
  random priorities are drawn from a ``k``-wise independent family and the
  seed is chosen deterministically so at least the expected number of edges
  is removed, giving ``O(log n)`` phases.  This is the documented substitute
  for the SPAA'20 black box (see DESIGN.md).

All implementations validate their output (independence and maximality).
"""

from repro.mis.greedy import greedy_mis
from repro.mis.luby import luby_mis
from repro.mis.deterministic import deterministic_mis
from repro.mis.validation import assert_maximal_independent_set, is_independent_set

__all__ = [
    "greedy_mis",
    "luby_mis",
    "deterministic_mis",
    "assert_maximal_independent_set",
    "is_independent_set",
]
