"""Luby's randomized maximal independent set algorithm.

Luby (1986): in each phase every surviving node draws a random priority;
nodes that hold a strict local minimum among their surviving neighbors join
the MIS, and they and their neighbors are removed.  With fully independent
priorities the expected number of edges removed per phase is a constant
fraction, so the number of phases is ``O(log n)`` with high probability.

The phase count is the model-relevant quantity (each phase is ``O(1)``
rounds of CONGESTED CLIQUE / MPC), so the result carries it explicitly and
the coloring-via-MIS baselines report it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.graph.graph import Graph
from repro.types import NodeId


@dataclass
class MISResult:
    """An independent set plus the number of phases used to find it."""

    independent_set: Set[NodeId]
    phases: int


def luby_mis(graph: Graph, seed: Optional[int] = None, max_phases: Optional[int] = None) -> MISResult:
    """Run Luby's algorithm with a seeded generator.

    ``max_phases`` defaults to ``4 * ceil(log2 n) + 8``; exceeding it would
    indicate a bug (the algorithm finishes in ``O(log n)`` phases with
    overwhelming probability), so the remaining nodes are then folded in
    greedily to keep the output maximal.
    """
    rng = random.Random(seed)
    alive: Set[NodeId] = set(graph.nodes())
    neighbors: Dict[NodeId, Set[NodeId]] = {node: set(graph.iter_neighbors(node)) for node in alive}
    chosen: Set[NodeId] = set()
    if max_phases is None:
        max_phases = 4 * max(1, graph.num_nodes.bit_length()) + 8
    phases = 0
    while alive and phases < max_phases:
        phases += 1
        priority = {node: rng.random() for node in alive}
        winners = set()
        for node in alive:
            node_priority = priority[node]
            if all(
                node_priority < priority[neighbor]
                for neighbor in neighbors[node]
                if neighbor in alive
            ):
                winners.add(node)
        if not winners:
            continue
        chosen.update(winners)
        removed = set(winners)
        for winner in winners:
            removed.update(neighbor for neighbor in neighbors[winner] if neighbor in alive)
        alive.difference_update(removed)
    # Safety net: fold in any stragglers greedily (keeps the output maximal).
    for node in sorted(alive):
        if not any(neighbor in chosen for neighbor in neighbors[node]):
            chosen.add(node)
    return MISResult(independent_set=chosen, phases=phases)
