"""Derandomized Luby MIS (the substitute for the SPAA'20 black box).

Theorem 1.4 uses the deterministic low-space MPC MIS algorithm of Czumaj,
Davies and Parter (SPAA'20) as a black box with round envelope
``O(log Δ + log log n)``.  Re-implementing that algorithm in full is outside
the scope of this reproduction (it is its own paper); instead we provide a
deterministic MIS with the same interface and a measured ``O(log n)``-phase
envelope, via the classic derandomization of Luby's algorithm:

* per phase, node priorities are drawn from a ``k``-wise independent hash
  family (so a single ``O(log n)``-bit seed determines the whole phase);
* the standard analysis shows that with pairwise-independent priorities the
  expected number of edges removed in a phase is at least a constant
  fraction of the surviving edges;
* the seed is therefore chosen deterministically (batched feasibility scan,
  the same machinery as :mod:`repro.derand`) so the realised number of
  removed edges is at least a fixed fraction, giving ``O(log m)`` phases.

DESIGN.md records this substitution; the low-space coloring experiments
report the measured phase counts of this component separately so the
substitution's effect on the end-to-end round count is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.errors import DerandomizationError
from repro.graph.graph import Graph
from repro.hashing.family import HashFunction, KWiseIndependentFamily
from repro.mis.luby import MISResult
from repro.types import NodeId

#: Fraction of surviving edges a phase must remove for its seed to be
#: accepted.  Luby's analysis guarantees an expected fraction of at least
#: 1/2 under full independence and a constant fraction under pairwise
#: independence; 1/8 is a deliberately conservative, always-achievable
#: target that keeps the seed scan short.
_REQUIRED_EDGE_FRACTION = 0.125

#: Candidate seeds examined per phase before declaring failure.
_MAX_SEEDS_PER_PHASE = 512


def _phase_outcome(
    alive: Set[NodeId],
    neighbors: Dict[NodeId, Set[NodeId]],
    priority_of: HashFunction,
) -> tuple[Set[NodeId], Set[NodeId], int]:
    """Winners, removed nodes and removed-edge count for one candidate seed."""
    priorities = {node: (priority_of.field_value(node), node) for node in alive}
    winners: Set[NodeId] = set()
    for node in alive:
        node_priority = priorities[node]
        is_local_min = True
        for neighbor in neighbors[node]:
            if neighbor in alive and priorities[neighbor] < node_priority:
                is_local_min = False
                break
        if is_local_min:
            winners.add(node)
    removed = set(winners)
    for winner in winners:
        removed.update(neighbor for neighbor in neighbors[winner] if neighbor in alive)
    removed_edges = 0
    for node in removed:
        for neighbor in neighbors[node]:
            if neighbor in alive and (neighbor not in removed or neighbor > node):
                removed_edges += 1
    return winners, removed, removed_edges


def deterministic_mis(
    graph: Graph,
    independence: int = 4,
    max_phases: Optional[int] = None,
) -> MISResult:
    """Deterministic MIS via derandomized Luby phases.

    Raises :class:`repro.errors.DerandomizationError` if some phase cannot
    find a seed removing the required edge fraction within the scan budget
    (which the analysis rules out; surfacing it loudly is preferable to
    silently looping).
    """
    alive: Set[NodeId] = set(graph.nodes())
    neighbors: Dict[NodeId, Set[NodeId]] = {node: set(graph.iter_neighbors(node)) for node in alive}
    chosen: Set[NodeId] = set()
    if max_phases is None:
        max_phases = 8 * max(1, graph.num_nodes.bit_length()) + 8
    domain = max(graph.nodes(), default=0) + 1
    phases = 0

    def surviving_edges() -> int:
        return sum(
            1
            for node in alive
            for neighbor in neighbors[node]
            if neighbor in alive and neighbor > node
        )

    edges_left = surviving_edges()
    while alive and phases < max_phases:
        if edges_left == 0:
            # No edges left: every surviving node is isolated and joins.
            chosen.update(alive)
            alive.clear()
            break
        phases += 1
        family = KWiseIndependentFamily(
            domain_size=domain, range_size=max(domain, 2), independence=independence
        )
        accepted = False
        for seed_int in range(_MAX_SEEDS_PER_PHASE):
            priority_of = family.from_seed_int(seed_int + phases * _MAX_SEEDS_PER_PHASE)
            winners, removed, removed_edges = _phase_outcome(alive, neighbors, priority_of)
            if removed_edges >= _REQUIRED_EDGE_FRACTION * edges_left or not winners:
                if not winners:
                    continue
                chosen.update(winners)
                alive.difference_update(removed)
                edges_left -= removed_edges
                accepted = True
                break
        if not accepted:
            raise DerandomizationError(
                f"phase {phases}: no seed among {_MAX_SEEDS_PER_PHASE} removed "
                f"{_REQUIRED_EDGE_FRACTION:.0%} of the {edges_left} surviving edges"
            )
    for node in sorted(alive):
        if not any(neighbor in chosen for neighbor in neighbors[node]):
            chosen.add(node)
    return MISResult(independent_set=chosen, phases=phases)
