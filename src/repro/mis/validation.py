"""Validation helpers for maximal independent sets."""

from __future__ import annotations

from typing import Iterable, Set

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.types import NodeId


def is_independent_set(graph: Graph, nodes: Iterable[NodeId]) -> bool:
    """Whether no two nodes of ``nodes`` are adjacent in ``graph``."""
    chosen: Set[NodeId] = set(nodes)
    for node in chosen:
        if any(neighbor in chosen for neighbor in graph.iter_neighbors(node)):
            return False
    return True


def is_maximal_independent_set(graph: Graph, nodes: Iterable[NodeId]) -> bool:
    """Whether ``nodes`` is independent and no node can be added to it."""
    chosen: Set[NodeId] = set(nodes)
    if not is_independent_set(graph, chosen):
        return False
    for node in graph.nodes():
        if node in chosen:
            continue
        if not any(neighbor in chosen for neighbor in graph.iter_neighbors(node)):
            return False
    return True


def assert_maximal_independent_set(graph: Graph, nodes: Iterable[NodeId]) -> None:
    """Raise :class:`ReproError` unless ``nodes`` is a maximal independent set."""
    chosen: Set[NodeId] = set(nodes)
    for node in chosen:
        for neighbor in graph.iter_neighbors(node):
            if neighbor in chosen:
                raise ReproError(
                    f"nodes {node} and {neighbor} are adjacent but both in the set"
                )
    for node in graph.nodes():
        if node in chosen:
            continue
        if not any(neighbor in chosen for neighbor in graph.iter_neighbors(node)):
            raise ReproError(f"node {node} could be added: the set is not maximal")
