"""Sequential greedy MIS (baseline and local solver)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.graph.graph import Graph
from repro.types import NodeId


def greedy_mis(graph: Graph, order: Optional[Iterable[NodeId]] = None) -> Set[NodeId]:
    """The maximal independent set produced by greedily scanning ``order``.

    The default order is ascending node id, which makes the output
    deterministic and reproducible.  Runs in ``O(n + m)`` time.
    """
    scan: List[NodeId] = list(order) if order is not None else sorted(graph.nodes())
    chosen: Set[NodeId] = set()
    blocked: Set[NodeId] = set()
    for node in scan:
        if node in blocked or node in chosen:
            continue
        chosen.add(node)
        blocked.update(graph.iter_neighbors(node))
    return chosen
