"""The CONGESTED CLIQUE round/bandwidth simulator.

:class:`CongestedCliqueSimulator` exposes the model-level operations the
paper's algorithms use, each of which charges rounds and message-words to a
:class:`repro.accounting.CostLedger` and enforces the model's bandwidth
constraints:

* :meth:`all_to_all_round` — one synchronous round in which every ordered
  pair of nodes exchanges at most one ``O(log n)``-bit word,
* :meth:`broadcast` — every node learns a value held by one node,
* :meth:`aggregate` — a global sum/min/max of one value per node,
* :meth:`lenzen_route` — arbitrary routing under per-node ``O(n)`` loads
  (Lenzen PODC'13, cf. paper Section 2.1),
* :meth:`collect_onto_node` — gather a subgraph of total size ``O(n)`` onto
  one node (the base case and the bad-graph step of ``ColorReduce``).

The simulator does not move real payloads; algorithms perform their logic in
ordinary Python and *declare* the communication they would perform, which the
simulator validates and meters.  This is the substitution documented in
DESIGN.md: the paper's claims are about rounds/messages/space, and those are
exactly the quantities enforced here.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.accounting import CostLedger
from repro.congested_clique.router import (
    LENZEN_ROUTING_ROUNDS,
    LenzenRouter,
    RoutingRequest,
)
from repro.errors import BandwidthExceededError, ConfigurationError
from repro.types import NodeId


class CongestedCliqueSimulator:
    """Round and bandwidth accounting for a clique of ``num_nodes`` nodes.

    Parameters
    ----------
    num_nodes:
        The number of nodes ``n`` (one per input-graph node).
    word_bits:
        The message size in bits; defaults to ``ceil(log2 n) + 1``, i.e. the
        model's ``O(log n)``-bit messages.  Only used for reporting.
    capacity_factor:
        Constant for the ``O(n)`` per-node load bound of Lenzen routing.
    """

    def __init__(
        self,
        num_nodes: int,
        word_bits: Optional[int] = None,
        capacity_factor: float = 16.0,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.word_bits = (
            word_bits if word_bits is not None else max(1, math.ceil(math.log2(max(num_nodes, 2)))) + 1
        )
        self.ledger = CostLedger()
        self._router = LenzenRouter(num_nodes, capacity_factor=capacity_factor)

    # ------------------------------------------------------------------
    # basic rounds
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Total rounds charged so far."""
        return self.ledger.rounds

    @property
    def message_words(self) -> int:
        """Total message-words charged so far."""
        return self.ledger.message_words

    def all_to_all_round(
        self, words_per_pair: Dict[tuple, int], label: str = "all-to-all"
    ) -> int:
        """Perform point-to-point communication.

        ``words_per_pair`` maps ordered pairs ``(src, dst)`` to the number of
        words ``src`` needs to deliver to ``dst``.  Since the model allows one
        word per ordered pair per round, the operation takes
        ``max(words_per_pair.values())`` rounds with all pairs progressing in
        parallel.  Returns the number of rounds charged.
        """
        if not words_per_pair:
            return 0
        for (src, dst), words in words_per_pair.items():
            self._check_node(src)
            self._check_node(dst)
            if words < 0:
                raise ConfigurationError("message word counts must be non-negative")
        rounds = max(words_per_pair.values())
        total_words = sum(words_per_pair.values())
        self.ledger.charge(label, rounds, total_words)
        return rounds

    def broadcast(self, source: NodeId, words: int = 1, label: str = "broadcast") -> int:
        """Node ``source`` delivers ``words`` words to every other node.

        A single word reaches everyone in one round (the node sends the same
        word to all); ``words`` words take ``words`` rounds.
        """
        self._check_node(source)
        if words < 0:
            raise ConfigurationError("words must be non-negative")
        rounds = words
        self.ledger.charge(label, rounds, words * (self.num_nodes - 1))
        return rounds

    def aggregate(self, words_per_node: int = 1, label: str = "aggregate") -> int:
        """Compute a global associative aggregate (sum/min/max) of one value
        per node, and deliver the result to every node.

        With all-to-all communication this takes a constant number of rounds:
        every node sends its value to a designated aggregator (1 round of at
        most ``n`` incoming words — within the Lenzen bound), which then
        broadcasts the result (1 round).
        """
        if words_per_node < 0:
            raise ConfigurationError("words_per_node must be non-negative")
        rounds = 2 * max(1, words_per_node)
        self.ledger.charge(label, rounds, 2 * words_per_node * self.num_nodes)
        return rounds

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def lenzen_route(
        self, requests: Iterable[RoutingRequest], label: str = "lenzen-routing"
    ) -> Dict[str, int]:
        """Route messages under the per-node ``O(n)`` load bound.

        Charges a constant number of rounds.  Raises
        :class:`repro.errors.BandwidthExceededError` if a node's send or
        receive load exceeds the bound.
        """
        stats = self._router.check(requests)
        self.ledger.charge(label, LENZEN_ROUTING_ROUNDS, stats["total_words"])
        return stats

    def collect_onto_node(
        self, target: NodeId, total_words: int, label: str = "collect"
    ) -> int:
        """Gather ``total_words`` words of data onto ``target``.

        This models collecting an instance of size ``O(n)`` onto a single
        node for local coloring (the base case of ``ColorReduce`` and the
        ``G_0`` step).  The words must fit inside the target's ``O(n)``
        receive budget; exceeding it is a model violation.
        """
        self._check_node(target)
        if total_words < 0:
            raise ConfigurationError("total_words must be non-negative")
        capacity = self._router.per_node_capacity
        if total_words > capacity:
            raise BandwidthExceededError(
                f"collecting {total_words} words onto node {target} exceeds the "
                f"O(n) receive bound of {capacity}"
            )
        self.ledger.charge(label, LENZEN_ROUTING_ROUNDS, total_words)
        return LENZEN_ROUTING_ROUNDS

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def per_node_capacity_words(self) -> int:
        """The ``O(n)`` per-node routing capacity in words."""
        return self._router.per_node_capacity

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside the clique [0, {self.num_nodes})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CongestedCliqueSimulator(n={self.num_nodes}, rounds={self.rounds}, "
            f"message_words={self.message_words})"
        )
