"""Lenzen's constant-round routing as a metered primitive.

Lenzen (PODC'13) showed that in the CONGESTED CLIQUE, any routing instance in
which every node is the source of at most ``n`` messages and the destination
of at most ``n`` messages can be delivered in ``O(1)`` rounds.  The paper
leans on this (Section 2.1) to move information freely as long as each node
obeys an ``O(n)`` bound on what it sends and receives — e.g. to collect an
instance of size ``O(n)`` onto a single node for local coloring.

The :class:`LenzenRouter` here checks exactly those two load conditions and
charges a constant number of rounds; it raises
:class:`repro.errors.BandwidthExceededError` when a request violates them,
which is how the test suite confirms the algorithms stay inside the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import BandwidthExceededError, ConfigurationError
from repro.types import NodeId

#: Number of CONGESTED CLIQUE rounds charged for one Lenzen routing phase.
#: The exact constant in Lenzen's paper is larger; what matters for the
#: reproduction is that it is a constant independent of n, and using a small
#: fixed value keeps the per-phase breakdown easy to read.
LENZEN_ROUTING_ROUNDS = 2


@dataclass(frozen=True)
class RoutingRequest:
    """One node-to-node transfer of ``words`` machine words."""

    source: NodeId
    destination: NodeId
    words: int

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ConfigurationError("words must be non-negative")


class LenzenRouter:
    """Checks the per-node send/receive load bounds of Lenzen routing.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n`` of the clique.
    capacity_factor:
        The constant in the ``O(n)`` load bound: every node may send and
        receive at most ``capacity_factor * n`` words per routing phase.
    """

    def __init__(self, num_nodes: int, capacity_factor: float = 4.0) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be positive")
        if capacity_factor <= 0:
            raise ConfigurationError("capacity_factor must be positive")
        self.num_nodes = num_nodes
        self.capacity_factor = capacity_factor

    @property
    def per_node_capacity(self) -> int:
        """Maximum words a node may send (and receive) in one routing phase."""
        return int(self.capacity_factor * self.num_nodes)

    def check(self, requests: Iterable[RoutingRequest]) -> Dict[str, int]:
        """Validate a routing instance and return its load statistics.

        Returns a dict with the total words routed and the maximum per-node
        send and receive loads.  Raises
        :class:`repro.errors.BandwidthExceededError` if any node exceeds the
        ``O(n)`` bound.
        """
        send_load: Dict[NodeId, int] = {}
        receive_load: Dict[NodeId, int] = {}
        total = 0
        for request in requests:
            send_load[request.source] = send_load.get(request.source, 0) + request.words
            receive_load[request.destination] = (
                receive_load.get(request.destination, 0) + request.words
            )
            total += request.words
        capacity = self.per_node_capacity
        for node, load in send_load.items():
            if load > capacity:
                raise BandwidthExceededError(
                    f"node {node} would send {load} words in one Lenzen routing phase, "
                    f"exceeding the O(n) bound of {capacity}"
                )
        for node, load in receive_load.items():
            if load > capacity:
                raise BandwidthExceededError(
                    f"node {node} would receive {load} words in one Lenzen routing phase, "
                    f"exceeding the O(n) bound of {capacity}"
                )
        return {
            "total_words": total,
            "max_send_load": max(send_load.values(), default=0),
            "max_receive_load": max(receive_load.values(), default=0),
        }
