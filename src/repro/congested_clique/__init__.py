"""CONGESTED CLIQUE model substrate.

The CONGESTED CLIQUE model (Section 1.1 of the paper): ``n`` nodes, one per
input-graph node, proceed in synchronous rounds; in each round every node may
send an ``O(log n)``-bit message to every other node.  Communication is not
restricted to input-graph edges.

The simulator in this subpackage does not ship bytes between processes — the
algorithms run in a single Python process — but it *meters and enforces* the
model's budgets: every model-level operation (all-to-all rounds, broadcasts,
Lenzen routing, collecting a subgraph onto one node) is charged to a
:class:`repro.accounting.CostLedger`, and operations that would exceed a
node's per-round bandwidth raise
:class:`repro.errors.BandwidthExceededError`.  The experiments read round
counts and message volumes from these ledgers; this is exactly the quantity
the paper's theorems are about.
"""

from repro.congested_clique.model import CongestedCliqueSimulator
from repro.congested_clique.router import LenzenRouter, RoutingRequest

__all__ = ["CongestedCliqueSimulator", "LenzenRouter", "RoutingRequest"]
