"""Coloring via the direct reduction to MIS solved with Luby's algorithm.

This is the "one-shot" use of Luby's reduction: build the reduction graph for
the *whole* instance and run a (randomized or deterministic) MIS algorithm on
it.  Its round count tracks the MIS phase count, i.e. grows logarithmically,
and its space requirement is the full ``O(nΔ)`` reduction graph — both the
quantities the paper's recursive approach improves on.  The E4 experiment
plots it next to ``ColorReduce`` and the trial-coloring baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.low_space.mis_reduction import color_via_mis
from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.graph.validation import assert_valid_list_coloring
from repro.mis.luby import MISResult, luby_mis
from repro.types import Color, NodeId

#: Simulated rounds charged per MIS phase (as in the low-space algorithm).
ROUNDS_PER_PHASE = 2


@dataclass
class MISColoringResult:
    """Output of the MIS-reduction coloring baseline."""

    coloring: Dict[NodeId, Color]
    mis_phases: int
    rounds: int
    reduction_vertices: int
    reduction_edges: int


def mis_based_coloring(
    graph: Graph,
    palettes: Optional[PaletteAssignment] = None,
    mis_solver: Optional[Callable[[Graph], MISResult]] = None,
    seed: int = 0,
    validate: bool = True,
) -> MISColoringResult:
    """Color ``graph`` by one reduction to MIS.

    The default MIS solver is randomized Luby with the given ``seed``; pass
    :func:`repro.mis.deterministic.deterministic_mis` for a deterministic
    run.
    """
    if palettes is None:
        palettes = PaletteAssignment.delta_plus_one(graph)
    palettes.validate_for_graph(graph)
    solver = mis_solver if mis_solver is not None else (lambda g: luby_mis(g, seed=seed))
    coloring, mis_result, reduction = color_via_mis(graph, palettes, solver)
    if validate:
        assert_valid_list_coloring(graph, palettes, coloring)
    return MISColoringResult(
        coloring=coloring,
        mis_phases=mis_result.phases,
        rounds=ROUNDS_PER_PHASE * mis_result.phases,
        reduction_vertices=reduction.num_vertices,
        reduction_edges=reduction.graph.num_edges,
    )
