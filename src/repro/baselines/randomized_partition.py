"""The randomized variant of ``ColorReduce`` (random seeds, no derandomization).

The paper derandomizes a randomized recursive partitioning procedure; this
baseline is exactly that procedure *before* derandomization: the hash pair of
every ``Partition`` call is a uniformly random member of the same
``c``-wise independent families.  Comparing it with the deterministic
algorithm isolates what derandomization costs (in rounds: nothing beyond the
seed-selection steps; in quality: nothing, by Lemma 3.9) — this is the E7
experiment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.color_reduce import ColorReduce, ColorReduceResult
from repro.core.context import ExecutionContext
from repro.core.params import ColorReduceParameters
from repro.derand.conditional_expectation import SelectionStrategy
from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment


def randomized_color_reduce(
    graph: Graph,
    palettes: Optional[PaletteAssignment] = None,
    params: Optional[ColorReduceParameters] = None,
    context: Optional[ExecutionContext] = None,
    seed: int = 0,
) -> ColorReduceResult:
    """Run ``ColorReduce`` with random (seeded) hash choices.

    The random choice can produce bad bins or many bad nodes on unlucky
    seeds; the algorithm still colors correctly (bad nodes are deferred to
    ``G_0``), which is exactly the behaviour the derandomization removes the
    luck from.
    """
    base = params if params is not None else ColorReduceParameters()
    randomized = replace(
        base,
        selection_strategy=SelectionStrategy.RANDOM,
        selection_rng_seed=seed,
    )
    algorithm = ColorReduce(params=randomized, context=context)
    return algorithm.run(graph, palettes)
