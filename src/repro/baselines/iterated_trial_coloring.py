"""Deterministic logarithmic-round trial coloring (the prior-art stand-in).

Before the present paper, the deterministic state of the art for
(Δ+1)-coloring in the CONGESTED CLIQUE was logarithmic in Δ (Censor-Hillel,
Parter, Schwartzman DISC'17 via MIS; Parter ICALP'18).  Those algorithms are
substantial systems in their own right; as a behavioural stand-in we
implement the classic *derandomized trial coloring* loop, which has the same
logarithmic round growth and uses the same derandomization toolkit as the
rest of this library:

Each phase (a constant number of CONGESTED CLIQUE rounds):

1. a hash function ``h`` drawn from a ``c``-wise independent family proposes
   a palette color for every uncolored node (its ``h``-th remaining color);
2. a node keeps its proposal if no uncolored neighbor proposes the same
   color and no already-colored neighbor owns it;
3. the seed of ``h`` is fixed deterministically (the same feasibility-scan /
   conditional-expectation machinery) so that at least the expected number
   of nodes succeed — a constant fraction, since each node succeeds with
   probability at least ``(1 - 1/(d+1))^d >= 1/4`` in expectation over the
   proposals.

A constant fraction of nodes is colored per phase, so the number of phases
is ``Θ(log n)`` — the logarithmic curve the E4 experiment plots against
``ColorReduce``'s constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.accounting import CostLedger
from repro.derand.conditional_expectation import _mix64
from repro.errors import ColoringError, DerandomizationError
from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.graph.validation import assert_valid_list_coloring
from repro.hashing.family import HashFunction, KWiseIndependentFamily
from repro.types import Color, NodeId

#: CONGESTED CLIQUE rounds charged per phase (propose + resolve + announce).
ROUNDS_PER_PHASE = 3
#: Candidate seeds examined per phase before giving up.
_MAX_SEEDS_PER_PHASE = 256
#: Fraction of the estimated expected successes a seed must achieve to be
#: accepted.  The estimate assumes fully independent proposals while the
#: family is only c-wise independent, so a factor-1/2 margin keeps every
#: phase feasible without affecting the logarithmic phase count.
_REQUIRED_FRACTION = 0.5


@dataclass
class TrialColoringResult:
    """Output of the iterated trial-coloring baseline."""

    coloring: Dict[NodeId, Color]
    phases: int
    rounds: int
    ledger: CostLedger


def _expected_successes(
    graph: Graph,
    remaining: Dict[NodeId, list],
    uncolored: set,
) -> float:
    """Lower bound on the expected number of successful proposals.

    Under uniform proposals, node ``v`` succeeds with probability at least
    ``prod_u (1 - 1/|remaining(u)|)`` over uncolored neighbors ``u`` — at
    least ``(1 - 1/(d+1))^d >= 1/4`` because ``|remaining(v)| > d(v)`` is
    maintained throughout.
    """
    total = 0.0
    for node in uncolored:
        probability = 1.0
        for neighbor in graph.neighbors(node):
            if neighbor in uncolored:
                probability *= max(0.0, 1.0 - 1.0 / max(len(remaining[neighbor]), 1))
        total += probability
    return total


def iterated_trial_coloring(
    graph: Graph,
    palettes: Optional[PaletteAssignment] = None,
    independence: int = 4,
    max_phases: Optional[int] = None,
    validate: bool = True,
) -> TrialColoringResult:
    """Run the deterministic trial-coloring baseline."""
    if palettes is None:
        palettes = PaletteAssignment.delta_plus_one(graph)
    palettes.validate_for_graph(graph)
    remaining: Dict[NodeId, list] = {
        node: sorted(palettes.palette(node)) for node in graph.nodes()
    }
    uncolored = set(graph.nodes())
    coloring: Dict[NodeId, Color] = {}
    ledger = CostLedger()
    if max_phases is None:
        max_phases = 8 * max(1, graph.num_nodes.bit_length()) + 16
    domain = max(graph.nodes(), default=0) + 1
    phases = 0

    while uncolored and phases < max_phases:
        phases += 1
        expected = _expected_successes(graph, remaining, uncolored)
        family = KWiseIndependentFamily(
            domain_size=max(domain, 2), range_size=max(domain, 2), independence=independence
        )
        accepted = False
        for attempt in range(_MAX_SEEDS_PER_PHASE):
            seed_int = _mix64(phases * _MAX_SEEDS_PER_PHASE + attempt)
            proposer = family.from_seed_int(seed_int)
            proposals = _propose(proposer, remaining, uncolored)
            successes = _successful_nodes(graph, proposals, coloring, uncolored)
            if len(successes) >= _REQUIRED_FRACTION * min(expected, len(uncolored)) and successes:
                for node in successes:
                    color = proposals[node]
                    coloring[node] = color
                uncolored.difference_update(successes)
                for node in list(uncolored):
                    palette = remaining[node]
                    used = {
                        coloring[neighbor]
                        for neighbor in graph.neighbors(node)
                        if neighbor in coloring
                    }
                    remaining[node] = [color for color in palette if color not in used]
                ledger.charge("trial-phase", ROUNDS_PER_PHASE, len(successes))
                accepted = True
                break
        if not accepted:
            raise DerandomizationError(
                f"phase {phases}: no seed among {_MAX_SEEDS_PER_PHASE} achieved the "
                f"expected {expected:.1f} successes over {len(uncolored)} uncolored nodes"
            )
    if uncolored:
        raise ColoringError(
            f"{len(uncolored)} nodes remain uncolored after {phases} phases"
        )
    if validate:
        assert_valid_list_coloring(graph, palettes, coloring)
    return TrialColoringResult(
        coloring=coloring, phases=phases, rounds=ledger.rounds, ledger=ledger
    )


def _propose(
    proposer: HashFunction, remaining: Dict[NodeId, list], uncolored: set
) -> Dict[NodeId, Color]:
    """Each uncolored node proposes its ``h(v)``-th remaining color."""
    proposals: Dict[NodeId, Color] = {}
    for node in uncolored:
        palette = remaining[node]
        index = proposer.field_value(node) % len(palette)
        proposals[node] = palette[index]
    return proposals


def _successful_nodes(
    graph: Graph,
    proposals: Dict[NodeId, Color],
    coloring: Dict[NodeId, Color],
    uncolored: set,
) -> set:
    """Nodes whose proposal conflicts with no neighbor's proposal or color."""
    winners = set()
    for node in uncolored:
        proposal = proposals[node]
        conflict = False
        for neighbor in graph.neighbors(node):
            if neighbor in uncolored and proposals[neighbor] == proposal:
                conflict = True
                break
            if coloring.get(neighbor) == proposal:
                conflict = True
                break
        if not conflict:
            winners.add(node)
    return winners
