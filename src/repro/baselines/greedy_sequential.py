"""Centralized greedy list coloring (the correctness baseline)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.local_coloring import greedy_list_coloring
from repro.graph.graph import Graph
from repro.graph.palettes import PaletteAssignment
from repro.graph.validation import count_colors_used
from repro.types import Color, NodeId


@dataclass
class GreedyBaselineResult:
    """Output of the centralized greedy baseline."""

    coloring: Dict[NodeId, Color]
    colors_used: int


def greedy_baseline(
    graph: Graph, palettes: Optional[PaletteAssignment] = None
) -> GreedyBaselineResult:
    """Color the whole graph greedily on a single machine.

    This is not a distributed algorithm — it is the reference every
    distributed result is validated against (same proper-coloring check,
    comparable number of colors used).
    """
    if palettes is None:
        palettes = PaletteAssignment.delta_plus_one(graph)
    coloring = greedy_list_coloring(graph, palettes)
    return GreedyBaselineResult(coloring=coloring, colors_used=count_colors_used(coloring))
