"""Baseline coloring algorithms the reproduction compares against.

The paper's evaluation is a complexity comparison against prior work
(Section 1.3); the baselines here are implementable stand-ins that exhibit
the relevant round behaviours on the simulated models:

* :mod:`repro.baselines.greedy_sequential` — centralized greedy list
  coloring; the correctness and color-count reference (no round model).
* :mod:`repro.baselines.randomized_partition` — the *randomized* version of
  ``ColorReduce`` (random hash seeds instead of the derandomized choice);
  isolates the cost of derandomization.
* :mod:`repro.baselines.iterated_trial_coloring` — a deterministic
  logarithmic-round algorithm in the spirit of the pre-2020 state of the art
  (Censor-Hillel et al. DISC'17 / Parter ICALP'18 era): each constant-round
  phase proposes hash-based colors and keeps the proposals that survive, the
  seed being fixed by the same derandomization machinery; a constant
  fraction of nodes is colored per phase, so the round count grows
  logarithmically while ``ColorReduce`` stays constant.
* :mod:`repro.baselines.mis_coloring` — coloring via the direct reduction to
  MIS solved with (randomized) Luby; its round count tracks the MIS phase
  count, again logarithmic.

DESIGN.md's substitution table records that these are behavioural stand-ins
for the cited prior algorithms, not line-by-line reimplementations.
"""

from repro.baselines.greedy_sequential import greedy_baseline
from repro.baselines.iterated_trial_coloring import iterated_trial_coloring
from repro.baselines.mis_coloring import mis_based_coloring
from repro.baselines.randomized_partition import randomized_color_reduce

__all__ = [
    "greedy_baseline",
    "iterated_trial_coloring",
    "mis_based_coloring",
    "randomized_color_reduce",
]
