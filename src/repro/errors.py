"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish the failure modes that matter:

* model violations (a protocol exceeded a round/space/message budget),
* invalid colorings (a produced coloring is not proper or not from palettes),
* invariant violations (the paper's Lemma 3.2 invariant failed),
* configuration errors (impossible parameters).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when parameters passed to a component are inconsistent."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (self-loops, unknown nodes, ...)."""


class PaletteError(ReproError):
    """Raised when a palette assignment is inconsistent with the graph."""


class ColoringError(ReproError):
    """Raised when a produced coloring is improper or violates palettes."""


class ModelViolationError(ReproError):
    """Raised when a simulated protocol exceeds a model budget.

    Examples: a congested-clique node sending more than its per-round word
    budget, or an MPC machine exceeding its local space.
    """


class SpaceLimitExceededError(ModelViolationError):
    """Raised when an MPC machine exceeds its local-space budget."""


class BandwidthExceededError(ModelViolationError):
    """Raised when a congested-clique node exceeds its per-round bandwidth."""


class InvariantViolationError(ReproError):
    """Raised when the Lemma 3.2 / Corollary 3.3 invariant is violated."""


class DerandomizationError(ReproError):
    """Raised when conditional-expectation seed selection cannot find a seed
    meeting the required cost bound (should not happen if the cost analysis
    is correct; surfaced loudly rather than silently degrading)."""


class HashFamilyError(ReproError):
    """Raised for invalid hash-family parameters (e.g. domain too large)."""


class ParallelExecutionError(ReproError):
    """Raised when the multiprocess slab-scoring pool fails *unrecoverably*
    (the pool is closed, or a replacement worker could not even be
    spawned).  Ordinary worker failures — crashes, hangs, garbled replies —
    are recovered in place (retry, respawn, in-process rescue; see
    :class:`repro.accounting.PoolHealth`) and never raise.  Never raised on
    the default in-process path."""


class WorkerCrashError(ParallelExecutionError):
    """Raised when a dead worker could not be replaced (the respawn itself
    failed).  A plain worker crash is self-healed — its shards are retried
    on surviving workers and a replacement is spawned in place — so this
    surfaces only when the host refuses to start new processes."""


class ShardIntegrityError(ParallelExecutionError):
    """Raised (and caught internally) when a worker reply fails the
    integrity checks: job/token echo mismatch, wrong shard length, or a
    cost vector that cannot be decoded as floats.  The affected shard is
    re-scored rather than silently corrupting the assembled cost vector."""


class CheckpointError(ReproError):
    """Raised when a checkpoint file cannot be read back: missing file,
    wrong magic, truncated payload, or a digest mismatch (the file was
    corrupted after the atomic rename).  Never raised for a *mismatched*
    checkpoint — resuming against the wrong graph or parameters is a
    :class:`ConfigurationError`."""


class RunAbortedError(ReproError):
    """Base class of *controlled* run aborts (resource budget, deadline,
    signal).  The run stopped at a recursion boundary, wrote a final
    checkpoint when one was configured, drained the worker pool and
    unlinked every owned shared-memory segment before raising.

    ``checkpoint_path`` is the file to pass to ``--resume`` (or
    ``resume_path``) to continue the run bit-identically; ``None`` when no
    checkpoint was configured."""

    def __init__(self, message: str, checkpoint_path: "str | None" = None) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


class ResourceBudgetExceeded(RunAbortedError):
    """Raised when the run's resident-set size reached ``memory_budget_mb``
    after the graceful degradations (prefetch off, buffers shrunk) failed
    to keep it under budget.  Resumable via the attached checkpoint."""


class DeadlineExceededError(RunAbortedError):
    """Raised when the run exceeded ``deadline_seconds`` of wall-clock
    time.  Resumable via the attached checkpoint."""


class RunInterrupted(RunAbortedError):
    """Raised when SIGTERM or SIGINT arrived during a durable run.  The
    in-flight recursion level was finished first, then the shutdown
    sequence ran (checkpoint, pool drain, shm unlink).  ``signum`` is the
    delivering signal; the CLI exits with ``128 + signum``."""

    def __init__(
        self, message: str, signum: int, checkpoint_path: "str | None" = None
    ) -> None:
        super().__init__(message, checkpoint_path=checkpoint_path)
        self.signum = signum
