"""E7 — Lemma 3.8 / Section 2.4: derandomized hash-pair selection.

Headline numbers are also emitted as ``BENCH_e7.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e7_derandomization


def test_e7_derandomization(benchmark, experiment_scale):
    result = run_once(benchmark, run_e7_derandomization, experiment_scale)
    emit_bench_json(
        "e7",
        [
            {
                "op": "derandomized-selection",
                "scale": experiment_scale,
                "max_selected_cost": result.headline["max_selected_cost"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # The selected pair's cost never exceeds the achievable bound by more than
    # the bound itself (it is verified against max(bound, sampled E[cost])).
    assert result.headline["max_selected_cost"] < float("inf")
    table = result.tables[0]
    for row in table.rows:
        sampled, bound, selected = float(row[2]), float(row[3]), float(row[4])
        assert selected <= max(bound, sampled) + 1e-9
