"""A1 — ablation: per-level bin count (the paper's ``l^0.1`` knob)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a1_bin_count


def test_a1_bin_count(benchmark, experiment_scale):
    result = run_once(benchmark, run_a1_bin_count, experiment_scale)
    assert result.headline["max_depth"] <= 9
