"""A1 — ablation: per-level bin count (the paper's ``l^0.1`` knob).

Headline numbers are also emitted as ``BENCH_a1.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a1_bin_count


def test_a1_bin_count(benchmark, experiment_scale):
    result = run_once(benchmark, run_a1_bin_count, experiment_scale)
    emit_bench_json(
        "a1",
        [
            {
                "op": "bin-count-ablation",
                "scale": experiment_scale,
                "max_depth": result.headline["max_depth"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    assert result.headline["max_depth"] <= 9
