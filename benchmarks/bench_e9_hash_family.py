"""E9 — Lemmas 2.2/2.4: the bounded-independence hashing substrate."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import run_e9_hash_family


def test_e9_hash_family(benchmark, experiment_scale):
    result = run_once(benchmark, run_e9_hash_family, experiment_scale)
    # Empirical tail frequencies never exceed the Bellare-Rompel bound.
    assert result.headline["bound_violations"] == 0
