"""E9 — Lemmas 2.2/2.4: the bounded-independence hashing substrate.

Headline numbers are also emitted as ``BENCH_e9.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e9_hash_family


def test_e9_hash_family(benchmark, experiment_scale):
    result = run_once(benchmark, run_e9_hash_family, experiment_scale)
    emit_bench_json(
        "e9",
        [
            {
                "op": "hash-family-tails",
                "scale": experiment_scale,
                "bound_violations": result.headline["bound_violations"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # Empirical tail frequencies never exceed the Bellare-Rompel bound.
    assert result.headline["bound_violations"] == 0
