"""E5 — Theorem 1.4: low-space MPC (deg+1)-list coloring round envelope.

Headline numbers are also emitted as ``BENCH_e5.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e5_low_space


def test_e5_low_space(benchmark, experiment_scale):
    result = run_once(benchmark, run_e5_low_space, experiment_scale)
    emit_bench_json(
        "e5",
        [
            {
                "op": "low-space-rounds",
                "scale": experiment_scale,
                "max_rounds_over_reference": result.headline[
                    "max_rounds_over_reference"
                ],
                "min_rounds_over_reference": result.headline[
                    "min_rounds_over_reference"
                ],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # The measured rounds stay within a bounded multiple of the
    # O(log Delta + log log n) reference curve across the sweep.  (The
    # multiple absorbs the 2^depth leftover-chain factor, which is a constant
    # in the paper's parameter regime but grows on laptop-scale bin counts;
    # see EXPERIMENTS.md.)
    assert result.headline["max_rounds_over_reference"] <= 500.0
    assert result.headline["min_rounds_over_reference"] > 0.0
