"""Machine-readable benchmark records (``BENCH_p<k>.json``).

Each ``bench_p*`` benchmark calls :func:`emit_bench_json` with one record
per measured operation so the perf trajectory exists as data, not just
stdout text; the CI smoke job uploads the files as artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path


def emit_bench_json(key: str, records) -> Path:
    """Write ``BENCH_<key>.json`` at the repository root.

    ``records`` is a list of dicts, one per measured operation, each with
    at least ``op``, ``n``, ``scalar_s``, ``batch_s`` and ``speedup``.
    """
    path = Path(__file__).resolve().parent.parent / f"BENCH_{key}.json"
    path.write_text(json.dumps(records, indent=2) + "\n")
    return path
