"""P2 — throughput of bin-instance construction: CSR extraction vs scalar.

Every ``Partition`` / ``LowSpacePartition`` level materialises its bin
instances as induced subgraphs.  The CSR-backed extraction layer
(:func:`repro.graph.csr.split_by_bins`, ``Graph.induced_subgraphs``)
replaces the scalar per-neighbor set-membership loops with one label
scatter plus per-group array gathers on the cached CSR view.  This
benchmark times the bin-instance construction phase of one real partition
level (the groups come from an actual hash selection + classification) for
both paths, asserting

* a >= 5x speedup of the construction phase at the default scale
  (n = 2000), and
* identical children — same node insertion order, same adjacency sets —

so future PRs have a recorded trajectory to regress against.  A secondary
measurement re-runs both paths and then touches every child's adjacency
sets (the CSR path materialises them lazily), reported as extra info so
the deferred cost stays visible.
"""

from __future__ import annotations

import time

from repro.core.classification import classify_partition
from repro.core.params import ColorReduceParameters
from repro.core.partition import Partition
from repro.graph.generators import erdos_renyi
from repro.graph.palettes import PaletteAssignment

_SCALES = {
    # (num nodes, average degree, timing rounds)
    "smoke": (600, 20, 5),
    "default": (2000, 30, 9),
    "full": (4000, 60, 9),
}

#: Required construction-phase speedups per scale.  At smoke size the fixed
#: kernel overheads (label arrays, per-group gather setup) are a large
#: fraction of the tiny scalar time, so only the realistic scales demand
#: the full 5x.
_REQUIRED_SPEEDUP = {"smoke": 1.5, "default": 5.0, "full": 5.0}


def _setup(scale: str):
    num_nodes, avg_degree, rounds = _SCALES[scale]
    graph = erdos_renyi(num_nodes, avg_degree / num_nodes, seed=42)
    palettes = PaletteAssignment.delta_plus_one(graph)
    params = ColorReduceParameters.scaled(num_bins=4)
    ell = max(float(graph.max_degree()), 2.0)
    selection = Partition(params).select_hash_pair(
        graph, palettes, ell, graph.num_nodes, salt=1
    )
    classification = classify_partition(
        graph, palettes, selection.h1, selection.h2, params, ell, graph.num_nodes
    )
    # The exact groups Partition.run materialises: the bad graph plus every
    # bin (color bins and leftover).
    groups = [classification.bad_nodes] + [
        classification.good_nodes_in_bin(bin_index)
        for bin_index in range(classification.num_bins)
    ]
    graph.csr()  # warm, as it is after a real batched selection
    return graph, groups, rounds


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _touch_children(children) -> int:
    """Force adjacency materialisation (the CSR path defers it)."""
    total = 0
    for child in children:
        for node in child.nodes():
            total += len(child.neighbors(node))
    return total


def test_p2_subgraph_extraction(benchmark, experiment_scale):
    graph, groups, rounds = _setup(experiment_scale)

    # Warm both paths once (interpreter/ufunc one-offs are not part of
    # either algorithm).
    graph.induced_subgraphs(groups, use_csr=False)
    graph.induced_subgraphs(groups, use_csr=True)

    # --- headline: the bin-instance construction phase --------------------
    scalar_seconds = _best_of(
        lambda: graph.induced_subgraphs(groups, use_csr=False), rounds
    )
    batched_seconds = benchmark.pedantic(
        _best_of,
        args=(lambda: graph.induced_subgraphs(groups, use_csr=True), rounds),
        rounds=1,
        iterations=1,
    )
    speedup = scalar_seconds / batched_seconds

    # --- secondary: construction plus full adjacency consumption ----------
    scalar_consumed = _best_of(
        lambda: _touch_children(graph.induced_subgraphs(groups, use_csr=False)),
        rounds,
    )
    batched_consumed = _best_of(
        lambda: _touch_children(graph.induced_subgraphs(groups, use_csr=True)),
        rounds,
    )
    consumed_speedup = scalar_consumed / batched_consumed

    # --- equivalence: identical children ----------------------------------
    scalar_children = graph.induced_subgraphs(groups, use_csr=False)
    batched_children = graph.induced_subgraphs(groups, use_csr=True)
    identical = True
    for expected, actual in zip(scalar_children, batched_children):
        if actual.nodes() != expected.nodes():
            identical = False
            break
        if any(
            actual.neighbors(node) != expected.neighbors(node)
            for node in expected.nodes()
        ):
            identical = False
            break

    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["num_groups"] = len(groups)
    benchmark.extra_info["scalar_seconds"] = round(scalar_seconds, 5)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 5)
    benchmark.extra_info["construction_speedup"] = round(speedup, 2)
    benchmark.extra_info["consumed_speedup"] = round(consumed_speedup, 2)
    benchmark.extra_info["identical_children"] = identical

    from bench_json import emit_bench_json

    emit_bench_json(
        "p2",
        [
            {
                "op": "bin-instance-construction",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_seconds, 5),
                "batch_s": round(batched_seconds, 5),
                "speedup": round(speedup, 2),
            },
            {
                "op": "construction-plus-consumption",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_consumed, 5),
                "batch_s": round(batched_consumed, 5),
                "speedup": round(consumed_speedup, 2),
            },
        ],
    )

    print()
    print("P2: bin-instance construction throughput (CSR extraction vs scalar)")
    print(
        f"  instance: n={graph.num_nodes} m={graph.num_edges} "
        f"groups={len(groups)}"
    )
    print(
        f"  construction phase:         scalar {scalar_seconds * 1e3:8.2f}ms  "
        f"batched {batched_seconds * 1e3:8.2f}ms   speedup {speedup:6.1f}x"
    )
    print(
        f"  incl. adjacency consumption: scalar {scalar_consumed * 1e3:7.2f}ms  "
        f"batched {batched_consumed * 1e3:8.2f}ms   speedup {consumed_speedup:6.1f}x"
    )
    print(f"  identical children:         {identical}")

    assert identical, "CSR-backed extraction must match the scalar reference exactly"
    required = _REQUIRED_SPEEDUP[experiment_scale]
    assert speedup >= required, (
        f"bin-instance construction only {speedup:.1f}x faster than scalar "
        f"(need {required:.1f}x)"
    )
