"""E6 — Theorems 1.2/1.3: local and total space accounting."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import run_e6_space_accounting


def test_e6_space(benchmark, experiment_scale):
    result = run_once(benchmark, run_e6_space_accounting, experiment_scale)
    # Peak local usage never exceeds the O(n) budget (utilisation <= 1).
    assert result.headline["worst_local_utilisation"] <= 1.0
