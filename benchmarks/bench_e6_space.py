"""E6 — Theorems 1.2/1.3: local and total space accounting.

Headline numbers are also emitted as ``BENCH_e6.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e6_space_accounting


def test_e6_space(benchmark, experiment_scale):
    result = run_once(benchmark, run_e6_space_accounting, experiment_scale)
    emit_bench_json(
        "e6",
        [
            {
                "op": "space-accounting",
                "scale": experiment_scale,
                "worst_local_utilisation": result.headline[
                    "worst_local_utilisation"
                ],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # Peak local usage never exceeds the O(n) budget (utilisation <= 1).
    assert result.headline["worst_local_utilisation"] <= 1.0
