"""A3 — ablation: the c-wise independence parameter."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a3_independence


def test_a3_independence(benchmark, experiment_scale):
    result = run_once(benchmark, run_a3_independence, experiment_scale)
    # Bad-node counts stay tiny for every tested c.
    assert result.headline["max_bad_nodes"] <= 16
