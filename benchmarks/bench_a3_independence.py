"""A3 — ablation: the c-wise independence parameter.

Headline numbers are also emitted as ``BENCH_a3.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a3_independence


def test_a3_independence(benchmark, experiment_scale):
    result = run_once(benchmark, run_a3_independence, experiment_scale)
    emit_bench_json(
        "a3",
        [
            {
                "op": "independence-ablation",
                "scale": experiment_scale,
                "max_bad_nodes": result.headline["max_bad_nodes"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # Bad-node counts stay tiny for every tested c.
    assert result.headline["max_bad_nodes"] <= 16
