"""Shared helpers for the benchmark harness.

Each ``bench_e*.py`` file regenerates one experiment from DESIGN.md's index
(E1–E9).  The benchmarks run each experiment exactly once under
``pytest-benchmark`` (the quantity of interest is the experiment's *output
tables*, not the harness's wall-clock time), print the tables so they land in
``bench_output.txt``, and assert the experiment's headline claim.

Select the sweep size with ``--experiment-scale={smoke,default,full}``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--experiment-scale",
        action="store",
        default="default",
        choices=("smoke", "default", "full"),
        help="sweep size used by the experiment benchmarks",
    )


@pytest.fixture(scope="session")
def experiment_scale(request: pytest.FixtureRequest) -> str:
    return request.config.getoption("--experiment-scale")


def run_once(benchmark, runner, scale: str):
    """Run an experiment exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(runner, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())
    return result
