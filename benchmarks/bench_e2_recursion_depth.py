"""E2 — Lemmas 3.11-3.14: recursion depth and instance-size shrinkage."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.recursion import depth_nine_size_ratio
from repro.experiments import run_e2_recursion_depth


def test_e2_recursion_depth(benchmark, experiment_scale):
    result = run_once(benchmark, run_e2_recursion_depth, experiment_scale)
    # Lemma 3.14: measured depth never exceeds 9.
    assert result.headline["max_depth"] <= 9
    # Closed form: the depth-9 bin-size bound is O(n) with the proof's constant.
    assert depth_nine_size_ratio(1e6, 1e5) <= 2 * 6**9
