"""E2 — Lemmas 3.11-3.14: recursion depth and instance-size shrinkage.

Headline numbers are also emitted as ``BENCH_e2.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``) so the JSON inventory covers the
experiment benchmarks, not just the perf family.
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.core.recursion import depth_nine_size_ratio
from repro.experiments import run_e2_recursion_depth


def test_e2_recursion_depth(benchmark, experiment_scale):
    result = run_once(benchmark, run_e2_recursion_depth, experiment_scale)
    emit_bench_json(
        "e2",
        [
            {
                "op": "recursion-depth",
                "scale": experiment_scale,
                "max_depth": result.headline["max_depth"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # Lemma 3.14: measured depth never exceeds 9.
    assert result.headline["max_depth"] <= 9
    # Closed form: the depth-9 bin-size bound is O(n) with the proof's constant.
    assert depth_nine_size_ratio(1e6, 1e5) <= 2 * 6**9
