"""P1 — throughput of the derandomized seed search: batched vs scalar.

The vectorized hash-evaluation / batched cost kernels
(:mod:`repro.hashing.batch`, :class:`repro.core.classification.PartitionCostEvaluator`)
replace the per-node, per-candidate Python loops of the selection cost with
matrix computations.  This benchmark times hash-pair selection on an
``n ~ 2000`` instance for both selection strategies and both evaluation
paths, asserting

* a >= 10x speedup of the FIRST_FEASIBLE feasibility scan, and
* bit-identical selection outcomes (same seeds, cost and accounting),

so future PRs have a recorded trajectory (``BENCH_*.json``) to regress
against.  The throughput measurement scans a fixed candidate budget (an
unreachable target bound, so both paths examine exactly the same
candidates); the equivalence measurement runs a real selection against the
Lemma 3.9 target.
"""

from __future__ import annotations

import time

import pytest

from repro.core.classification import partition_cost_function
from repro.core.params import ColorReduceParameters
from repro.core.partition import Partition
from repro.derand.conditional_expectation import HashPairSelector, SelectionStrategy
from repro.errors import DerandomizationError
from repro.graph.generators import erdos_renyi
from repro.graph.palettes import PaletteAssignment
from repro.hashing.family import KWiseIndependentFamily

_SCALES = {
    # (num nodes, average degree, scan candidate budget)
    "smoke": (600, 20, 48),
    "default": (2000, 30, 96),
    "full": (3000, 40, 192),
}

#: Required FIRST_FEASIBLE / CONDITIONAL_EXPECTATION speedups per scale.
#: At smoke size the fixed kernel overheads (array prep, candidate
#: generation) are a large fraction of the tiny scalar time, so only the
#: realistic scales demand the full 10x.
_REQUIRED_SPEEDUP = {
    "smoke": (1.5, 1.5),
    "default": (10.0, 2.0),
    "full": (10.0, 2.0),
}


def _setup(scale: str):
    num_nodes, avg_degree, budget = _SCALES[scale]
    graph = erdos_renyi(num_nodes, avg_degree / num_nodes, seed=42)
    palettes = PaletteAssignment.delta_plus_one(graph)
    params = ColorReduceParameters.scaled(num_bins=4)
    ell = max(float(graph.max_degree()), 2.0)
    cost = partition_cost_function(graph, palettes, params, ell, graph.num_nodes)
    family1, family2 = Partition(params).build_families(
        graph, palettes, ell, graph.num_nodes
    )
    return graph, palettes, params, ell, cost, family1, family2, budget


def _scan_fixed_budget(cost, family1, family2, budget, use_batch):
    """FIRST_FEASIBLE over exactly ``budget`` candidates (infeasible bound)."""
    selector = HashPairSelector(
        family1,
        family2,
        strategy=SelectionStrategy.FIRST_FEASIBLE,
        batch_size=16,
        max_candidates=budget,
        candidate_salt=7,
        use_batch=use_batch,
    )
    started = time.perf_counter()
    with pytest.raises(DerandomizationError):
        selector.select(cost, target_bound=-1.0)
    return time.perf_counter() - started


def _conditional_expectation_search(cost, family1, family2, use_batch):
    """One full conditional-expectation search (reduced color-seed width)."""
    selector = HashPairSelector(
        family1,
        family2,
        strategy=SelectionStrategy.CONDITIONAL_EXPECTATION,
        chunk_bits=4,
        completion_samples=1,
        exact_completion_bits=4,
        candidate_salt=7,
        use_batch=use_batch,
    )
    started = time.perf_counter()
    outcome = selector.select(cost, target_bound=None)
    return time.perf_counter() - started, outcome


def test_p1_selection_throughput(benchmark, experiment_scale):
    graph, palettes, params, ell, cost, family1, family2, budget = _setup(
        experiment_scale
    )

    # Warm both paths once (NumPy ufunc initialisation and interpreter
    # caches are process-level one-offs, not part of either algorithm);
    # the timed evaluator below is fresh, so its array prep is included.
    warm_pair = (family1.from_seed_int(1), family2.from_seed_int(1))
    partition_cost_function(graph, palettes, params, ell, graph.num_nodes).many(
        [warm_pair]
    )
    cost(*warm_pair)

    # --- headline: FIRST_FEASIBLE scan over a fixed candidate budget ------
    scalar_scan = _scan_fixed_budget(cost, family1, family2, budget, use_batch=False)
    batched_scan = benchmark.pedantic(
        _scan_fixed_budget,
        args=(cost, family1, family2, budget, True),
        rounds=1,
        iterations=1,
    )
    scan_speedup = scalar_scan / batched_scan

    # --- bit-identical real selection (Lemma 3.9 target) ------------------
    target = params.cost_target(ell, graph.num_nodes)
    outcomes = {}
    for use_batch in (True, False):
        selector = HashPairSelector(
            family1,
            family2,
            strategy=SelectionStrategy.FIRST_FEASIBLE,
            batch_size=16,
            max_candidates=4096,
            candidate_salt=7,
            use_batch=use_batch,
        )
        outcomes[use_batch] = selector.select(cost, target_bound=target)
    identical = (
        outcomes[True].h1.seed == outcomes[False].h1.seed
        and outcomes[True].h2.seed == outcomes[False].h2.seed
        and outcomes[True].cost == outcomes[False].cost
        and outcomes[True].evaluations == outcomes[False].evaluations
    )

    # --- second strategy: conditional expectation --------------------------
    # A narrow color family keeps the joint seed short enough that the
    # scalar reference search finishes in benchmark time.
    universe = palettes.color_universe()
    narrow_family2 = KWiseIndependentFamily(
        domain_size=max(universe) + 1,
        range_size=family2.range_size,
        independence=params.independence,
    )
    scalar_ce, outcome_ce_scalar = _conditional_expectation_search(
        cost, family1, narrow_family2, use_batch=False
    )
    batched_ce, outcome_ce_batched = _conditional_expectation_search(
        cost, family1, narrow_family2, use_batch=True
    )
    ce_speedup = scalar_ce / batched_ce
    ce_identical = (
        outcome_ce_batched.h1.seed == outcome_ce_scalar.h1.seed
        and outcome_ce_batched.h2.seed == outcome_ce_scalar.h2.seed
        and outcome_ce_batched.cost == outcome_ce_scalar.cost
        and outcome_ce_batched.evaluations == outcome_ce_scalar.evaluations
    )

    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["scan_candidates"] = budget
    benchmark.extra_info["scalar_scan_seconds"] = round(scalar_scan, 4)
    benchmark.extra_info["batched_scan_seconds"] = round(batched_scan, 4)
    benchmark.extra_info["first_feasible_speedup"] = round(scan_speedup, 2)
    benchmark.extra_info["conditional_expectation_speedup"] = round(ce_speedup, 2)
    benchmark.extra_info["identical_selection"] = identical and ce_identical

    from bench_json import emit_bench_json

    emit_bench_json(
        "p1",
        [
            {
                "op": "first-feasible-scan",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_scan, 5),
                "batch_s": round(batched_scan, 5),
                "speedup": round(scan_speedup, 2),
            },
            {
                "op": "conditional-expectation",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_ce, 5),
                "batch_s": round(batched_ce, 5),
                "speedup": round(ce_speedup, 2),
            },
        ],
    )

    print()
    print("P1: derandomized seed-search throughput (batched kernels vs scalar)")
    print(
        f"  instance: n={graph.num_nodes} m={graph.num_edges} "
        f"candidates={budget}"
    )
    print(
        f"  FIRST_FEASIBLE scan:        scalar {scalar_scan:8.3f}s   "
        f"batched {batched_scan:8.3f}s   speedup {scan_speedup:6.1f}x"
    )
    print(
        f"  CONDITIONAL_EXPECTATION:    scalar {scalar_ce:8.3f}s   "
        f"batched {batched_ce:8.3f}s   speedup {ce_speedup:6.1f}x"
    )
    print(f"  identical selected seeds:   {identical and ce_identical}")

    required_scan, required_ce = _REQUIRED_SPEEDUP[experiment_scale]
    assert identical, "batched FIRST_FEASIBLE selection must match scalar exactly"
    assert ce_identical, "batched conditional expectation must match scalar exactly"
    assert scan_speedup >= required_scan, (
        f"FIRST_FEASIBLE batched scan only {scan_speedup:.1f}x faster than scalar"
    )
    assert ce_speedup >= required_ce, (
        f"conditional-expectation batched search only {ce_speedup:.1f}x faster"
    )
