"""P8 — million-node scale: segmented cross-bin kernels, end to end.

Two claims, measured on one large Erdős–Rényi instance:

1. **Level-loop speedup** (the gated record).  With ``FIRST_FEASIBLE``
   selection every recursing bin of a level scores the same head batch of
   hash-pair candidates; the per-bin reference pays a scalar head probe
   plus a batched tail *per bin*, while the segmented kernel layer
   (:mod:`repro.core.level`) scores all sibling bins in one concatenated
   pass.  The two paths produce bit-identical cost values (asserted here),
   and the segmented pass must be at least
   ``BENCH_P8_REQUIRED_SPEEDUP`` (default 2x) faster at the smoke scale
   and above.

2. **End-to-end wall-clock** (gated record, ``metric: seconds``).  A full
   ``ColorReduce`` run is timed with a median-of-k protocol
   (``BENCH_P8_E2E_RUNS`` repeats, default 3; the recorded ``batch_s`` is
   the median, so one scheduler hiccup cannot fail the gate), and the
   coloring is asserted identical across the repeats.
   ``check_regression.py`` gates the median lower-is-better: the fresh
   time must stay within ``baseline / tolerance``.

3. **Neutrality + determinism** (smoke scale).  The run with
   ``level_use_batch`` on must produce the *identical* coloring, recursion
   tree and round ledger as with it off — the prefetch only moves work,
   never changes outcomes.  Peak RSS is recorded informationally
   (``gate: false`` — a capacity record, not a speedup).

The smoke scale runs ``n = 10^5`` on every push; the default (nightly)
scale runs ``n = 10^6``, where the flag-off reference would double an
already long run, so only the flag-on path executes end to end and the
differential assertions ride the smoke scale.  Results are written to
``BENCH_p8.json``.
"""

from __future__ import annotations

import os
import resource
import statistics
import time

from bench_json import emit_bench_json

from repro.core.classification import partition_cost_function
from repro.core.color_reduce import ColorReduce
from repro.core.level import child_salt, head_pairs, prefetch_partition_level
from repro.core.params import ColorReduceParameters
from repro.core.partition import Partition
from repro.graph.generators import erdos_renyi
from repro.graph.palettes import PaletteAssignment

_SCALES = {
    # (num nodes, average degree, run the flag-off reference end to end)
    "smoke": (100_000, 16, True),
    "default": (1_000_000, 8, False),
    "full": (1_000_000, 8, False),
}

#: collect_factor 0.25 forces at least two partitioning levels at these
#: scales (children of the root are still above the collect threshold), so
#: the cross-bin prefetch actually engages below the root.
_PARAMS = dict(num_bins=4, collect_factor=0.25)


def _peak_rss_mb() -> float:
    """Peak resident set of this process in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _tree_signature(node):
    return (
        node.depth,
        node.num_nodes,
        node.num_edges,
        node.num_bins,
        node.num_bad_nodes,
        node.invariant_violations,
        tuple(_tree_signature(child) for child in node.children),
    )


def _level_head_scoring(graph, palettes, params, ell, global_nodes, min_children):
    """Time the per-bin vs segmented head-batch scoring of the root level.

    Returns ``(per_bin_seconds, segmented_seconds)`` after asserting the
    two paths produced identical cost values for every (bin, candidate).
    """
    partition = Partition(params).run(graph, palettes, ell, global_nodes, salt=1)
    next_ell = params.next_ell(ell)
    children = [
        (b.bin_index, child_salt(1, b.bin_index), b.graph, b.palettes)
        for b in partition.color_bins
        if not b.is_empty
    ]
    assert len(children) >= min_children, (
        f"expected at least {min_children} non-empty sibling bins, got "
        f"{len(children)}"
    )
    count = min(params.selection_batch_size, params.selection_max_candidates)
    builder = Partition(params)
    pairs_of = {
        key: head_pairs(
            *builder.build_families(cg, cp, next_ell, global_nodes), salt, count
        )
        for key, salt, cg, cp in children
    }

    started = time.perf_counter()
    reference = {}
    for key, _salt, child_graph, child_palettes in children:
        pairs = pairs_of[key]
        cost = partition_cost_function(
            child_graph, child_palettes, params, next_ell, global_nodes
        )
        head = cost(*pairs[0])
        reference[key] = [head] + list(cost.many(pairs[1:]))
    per_bin_seconds = time.perf_counter() - started

    started = time.perf_counter()
    prefetched = prefetch_partition_level(children, params, next_ell, global_nodes)
    segmented_seconds = time.perf_counter() - started

    for key, _salt, _cg, _cp in children:
        proxy = prefetched[key]
        values = [proxy(*pair) for pair in pairs_of[key]]
        assert values == reference[key], (
            f"segmented head batch diverged from the per-bin reference in "
            f"bin {key}"
        )
    return per_bin_seconds, segmented_seconds


def test_p8_end_to_end(benchmark, experiment_scale):
    num_nodes, avg_degree, run_reference = _SCALES[experiment_scale]
    graph = erdos_renyi(num_nodes, avg_degree / num_nodes, seed=42)
    palettes = PaletteAssignment.delta_plus_one(graph)
    ell = max(float(graph.max_degree()), 1.0)

    params_on = ColorReduceParameters.scaled(**_PARAMS)
    params_off = ColorReduceParameters.scaled(**_PARAMS, level_use_batch=False)

    # The smoke instance is known to spread the root across >= 2 color bins;
    # at n = 10^6 the selected pair happens to leave a single (500k-node)
    # non-empty color bin, which still exercises the segmented layer.
    per_bin_s, segmented_s = _level_head_scoring(
        graph, palettes, params_on, ell, graph.num_nodes,
        min_children=2 if experiment_scale == "smoke" else 1,
    )
    level_speedup = per_bin_s / segmented_s

    # Median-of-k end-to-end protocol: k timed runs (default 3, override
    # with BENCH_P8_E2E_RUNS), recording the median so one scheduler
    # hiccup cannot fail the wall-clock gate; every repeat must reproduce
    # the first run's coloring exactly.
    e2e_runs = max(1, int(os.environ.get("BENCH_P8_E2E_RUNS", "3")))
    samples = []
    result_on = None
    for _ in range(e2e_runs):
        started = time.perf_counter()
        result = ColorReduce(params_on).run(graph)
        samples.append(time.perf_counter() - started)
        if result_on is None:
            result_on = result
        else:
            assert result.coloring == result_on.coloring, (
                "end-to-end repeats produced different colorings"
            )
    on_seconds = statistics.median(samples)

    off_seconds = None
    if run_reference:
        started = time.perf_counter()
        result_off = ColorReduce(params_off).run(graph)
        off_seconds = time.perf_counter() - started
        assert result_on.coloring == result_off.coloring, (
            "level_use_batch changed the coloring"
        )
        assert _tree_signature(result_on.recursion_root) == _tree_signature(
            result_off.recursion_root
        ), "level_use_batch changed the recursion tree"
        assert result_on.rounds == result_off.rounds, (
            "level_use_batch changed the round count"
        )

    rss_mb = _peak_rss_mb()

    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["level_speedup"] = round(level_speedup, 2)
    benchmark.extra_info["e2e_on_s"] = round(on_seconds, 2)
    benchmark.extra_info["peak_rss_mb"] = round(rss_mb, 1)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    records = [
        {
            "op": "level-head-scoring",
            "n": graph.num_nodes,
            "scalar_s": round(per_bin_s, 5),
            "batch_s": round(segmented_s, 5),
            "speedup": round(level_speedup, 2),
            "gate": True,
        },
        {
            "op": "peak-rss",
            "n": graph.num_nodes,
            "rss_mb": round(rss_mb, 1),
            "speedup": 0.0,
            "gate": False,
        },
    ]
    e2e_record = {
        "op": "e2e-colorreduce",
        "n": graph.num_nodes,
        "batch_s": round(on_seconds, 5),
        "speedup": 0.0,
        "metric": "seconds",
        "runs": e2e_runs,
        "samples": [round(s, 5) for s in samples],
        "gate": True,
    }
    if off_seconds is not None:
        e2e_record["scalar_s"] = round(off_seconds, 5)
    records.insert(1, e2e_record)
    emit_bench_json("p8", records)

    print()
    print("P8: million-node scale (segmented cross-bin kernels)")
    print(
        f"  instance: n={graph.num_nodes} m={graph.num_edges} "
        f"maxdeg={graph.max_degree()}"
    )
    print(
        f"  level head scoring: per-bin {per_bin_s:8.3f}s vs segmented "
        f"{segmented_s:8.3f}s ({level_speedup:5.2f}x, bit-identical values)"
    )
    if off_seconds is not None:
        print(
            f"  end-to-end ColorReduce: flag-off {off_seconds:8.2f}s vs "
            f"flag-on median {on_seconds:8.2f}s of {e2e_runs} "
            "(identical coloring/tree/rounds)"
        )
    else:
        print(
            f"  end-to-end ColorReduce (flag on): median {on_seconds:8.2f}s "
            f"of {e2e_runs} run(s) {[round(s, 2) for s in samples]}"
        )
    print(f"  peak RSS: {rss_mb:8.1f} MiB")

    required = float(os.environ.get("BENCH_P8_REQUIRED_SPEEDUP", "2.0"))
    assert level_speedup >= required, (
        f"segmented level scoring only {level_speedup:.2f}x faster than the "
        f"per-bin reference at n={graph.num_nodes} (required {required}x)"
    )
