#!/usr/bin/env python
"""CI perf-regression gate over the ``BENCH_*.json`` records.

The ``bench_p*`` benchmarks emit machine-readable perf records (one dict
per measured op, with a ``speedup`` field — batched/parallel path vs the
scalar reference, measured on the same host in the same run, so the ratio
is largely hardware-independent).  This script compares freshly produced
records against committed baselines and **fails** when a speedup regressed
past the tolerance, turning the perf trajectory from an archived artifact
into a gate.

Usage::

    python benchmarks/check_regression.py                  # gate (CI)
    python benchmarks/check_regression.py --tolerance 0.6  # stricter
    python benchmarks/check_regression.py --update         # refresh baselines

The family covers the perf benchmarks (``BENCH_p<k>.json``, gated
speedups) and the experiment headlines (``BENCH_e<k>.json``, emitted with
``gate: false`` — inventoried and matched, never failed on their numbers).

Matching and skip rules
-----------------------
Records are matched by ``op`` within each ``BENCH_*.json``.  A pair is
*skipped* (reported, never failed) when:

* either record carries ``"gate": false`` — micro-timings and
  documentation-only records opt out at the source;
* both records carry a ``"cpus"`` field and they differ — multiprocess
  speedups (P5) are only comparable between hosts with the same core
  count;
* the instance sizes (``n``) differ — the baseline was recorded at a
  different ``--experiment-scale``.

A fresh record passes when ``speedup >= tolerance * baseline_speedup``.
The default tolerance (0.5) absorbs shared-runner noise while still
catching a kernel that silently lost half its advantage.

Records may instead gate a **wall-clock** number: a record carrying
``"metric": "seconds"`` is compared on its ``batch_s`` field,
lower-is-better — the fresh time must be at most ``baseline / tolerance``
(with the default 0.5 that allows up to 2x the baseline time, the mirror
image of "lost half its advantage").  The P8 end-to-end record uses this
to gate the million-node wall-clock, measured with a median-of-k protocol
at the source so a single scheduler hiccup cannot fail the gate.

Baseline validity
-----------------
A gate-armed P5 **baseline** recorded on a single CPU is rejected outright
(:class:`BenchRecordError`, exit 2), not skipped: a 1-CPU host cannot
witness a parallel speedup, so such a baseline makes the gate silently
vacuous — every multi-core CI run differs in ``cpus`` and is skipped,
which is exactly the failure mode that once let the committed P5 baselines
enforce nothing.  ``bench_p5`` now stamps ``"gate": false`` on every
record it emits from a <2-CPU host (the explicit, visible opt-out); a
``cpus: 1`` record with the gate still armed can only be a hand-edited or
stale baseline and must fail loudly.  Refresh baselines with ``--update``
from a multi-core run to arm the P5 gate.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Baselines are committed per benchmark scale (``baselines/smoke`` for the
#: push/PR smoke job, ``baselines/default`` for the nightly default run);
#: the gate defaults to the smoke set.
DEFAULT_BASELINE_DIR = Path(__file__).resolve().parent / "baselines" / "smoke"


class BenchRecordError(Exception):
    """A BENCH json file that cannot be gated: carries ``path`` and a
    human-readable ``reason`` so :func:`main` can print one actionable line
    (file, reason) instead of a traceback."""

    def __init__(self, path: Path, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


#: Keys every gated record must carry: the match key and the gated metric.
REQUIRED_RECORD_KEYS = ("op", "speedup")


def load_records(path: Path):
    """``op -> record`` for one BENCH json file.

    Raises :class:`BenchRecordError` (file + reason) for anything that
    cannot be gated: an unreadable or truncated/invalid JSON file, a
    top-level value that is not a list of record objects, or a record
    missing ``op``/``speedup`` (or with a non-numeric ``speedup``) — a
    baseline edited by hand or a benchmark run killed mid-write must fail
    loudly, not half-gate.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise BenchRecordError(path, f"cannot read file ({exc})") from exc
    try:
        records = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchRecordError(
            path, f"invalid JSON (truncated or corrupt: {exc})"
        ) from exc
    if not isinstance(records, list):
        raise BenchRecordError(
            path, f"expected a JSON list of records, got {type(records).__name__}"
        )
    by_op = {}
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise BenchRecordError(
                path, f"record {index} is not an object ({type(record).__name__})"
            )
        for key in REQUIRED_RECORD_KEYS:
            if key not in record:
                raise BenchRecordError(
                    path, f"record {index} is missing required key {key!r}"
                )
        if not isinstance(record["speedup"], (int, float)) or isinstance(
            record["speedup"], bool
        ):
            raise BenchRecordError(
                path,
                f"record {index} ({record['op']!r}) has non-numeric speedup "
                f"{record['speedup']!r}",
            )
        if record.get("metric") == "seconds":
            batch_s = record.get("batch_s")
            if not isinstance(batch_s, (int, float)) or isinstance(
                batch_s, bool
            ) or batch_s <= 0:
                raise BenchRecordError(
                    path,
                    f"record {index} ({record['op']!r}) gates on seconds but "
                    f"has no positive numeric batch_s ({batch_s!r})",
                )
        by_op[record["op"]] = record
    return by_op


def validate_baseline(path: Path, records: dict) -> None:
    """Reject baselines that would make the gate silently vacuous.

    Only P5 (multiprocess scaling) records are CPU-sensitive: a gate-armed
    baseline recorded on one CPU can never match a multi-core CI run's
    ``cpus`` field, so every comparison would be skipped forever.  The
    benchmark stamps ``"gate": false`` on single-CPU records itself; one
    that arrives here armed is stale or hand-edited.
    """
    if not path.name.startswith("BENCH_p5"):
        return
    for op, record in sorted(records.items()):
        if record.get("cpus") == 1 and record.get("gate") is not False:
            raise BenchRecordError(
                path,
                f"gate-armed P5 baseline {op!r} was recorded on 1 CPU — it "
                "can never be compared against a multi-core run, making the "
                "gate vacuous; re-record it on a multi-core host "
                "(check_regression.py --update) or mark it \"gate\": false",
            )


def compare_file(name: str, baseline: Path, current: Path, tolerance: float):
    """Compare one benchmark file; returns (lines, regressions, compared)."""
    lines = []
    regressions = 0
    compared = 0
    baseline_records = load_records(baseline)
    validate_baseline(baseline, baseline_records)
    current_records = load_records(current)
    for op, base in sorted(baseline_records.items()):
        fresh = current_records.get(op)
        prefix = f"  {name}:{op}"
        if fresh is None:
            lines.append(f"{prefix}: MISSING from current run")
            regressions += 1
            continue
        if base.get("gate") is False or fresh.get("gate") is False:
            lines.append(f"{prefix}: skipped (gate=false)")
            continue
        if "cpus" in base and "cpus" in fresh and base["cpus"] != fresh["cpus"]:
            lines.append(
                f"{prefix}: skipped (cpus {base['cpus']} -> {fresh['cpus']})"
            )
            continue
        if base.get("n") != fresh.get("n"):
            lines.append(
                f"{prefix}: skipped (scale mismatch: n {base.get('n')} -> "
                f"{fresh.get('n')})"
            )
            continue
        compared += 1
        if base.get("metric") == "seconds" or fresh.get("metric") == "seconds":
            if base.get("metric") != fresh.get("metric"):
                lines.append(
                    f"{prefix}: skipped (metric mismatch: "
                    f"{base.get('metric')!r} -> {fresh.get('metric')!r})"
                )
                compared -= 1
                continue
            ceiling = base["batch_s"] / tolerance
            status = "ok" if fresh["batch_s"] <= ceiling else "REGRESSION"
            lines.append(
                f"{prefix}: {status} (baseline {base['batch_s']:.2f}s, "
                f"current {fresh['batch_s']:.2f}s, ceiling {ceiling:.2f}s)"
            )
        else:
            required = tolerance * base["speedup"]
            status = "ok" if fresh["speedup"] >= required else "REGRESSION"
            lines.append(
                f"{prefix}: {status} (baseline {base['speedup']:.2f}x, "
                f"current {fresh['speedup']:.2f}x, floor {required:.2f}x)"
            )
        if status == "REGRESSION":
            regressions += 1
    return lines, regressions, compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help=(
            "fresh speedup must be at least this fraction of the baseline "
            "speedup (default 0.5)"
        ),
    )
    parser.add_argument(
        "--min-compared",
        type=int,
        default=1,
        help=(
            "fail unless at least this many records were actually compared "
            "(guards against a vacuous green gate when every record was "
            "skipped, e.g. a scale mismatch across the board)"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current BENCH_*.json files into the baseline dir",
    )
    args = parser.parse_args(argv)

    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        copied = 0
        for current in sorted(args.current_dir.glob("BENCH_*.json")):
            shutil.copy(current, args.baseline_dir / current.name)
            copied += 1
        print(f"updated {copied} baseline file(s) in {args.baseline_dir}")
        return 0

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines found in {args.baseline_dir}", file=sys.stderr)
        return 2

    total_regressions = 0
    total_compared = 0
    print(
        f"perf-regression gate: tolerance {args.tolerance}, "
        f"baselines {args.baseline_dir}"
    )
    for baseline in baselines:
        current = args.current_dir / baseline.name
        if not current.exists():
            print(f"  {baseline.name}: MISSING current file at {current}")
            total_regressions += 1
            continue
        try:
            lines, regressions, compared = compare_file(
                baseline.name, baseline, current, args.tolerance
            )
        except BenchRecordError as exc:
            print(f"error: {exc.path}: {exc.reason}", file=sys.stderr)
            return 2
        print("\n".join(lines))
        total_regressions += regressions
        total_compared += compared

    if total_regressions:
        print(
            f"\nFAILED: {total_regressions} regression(s) across "
            f"{total_compared} compared record(s)"
        )
        return 1
    if total_compared < args.min_compared:
        print(
            f"\nFAILED: only {total_compared} record(s) compared "
            f"(min {args.min_compared}) — every record was skipped; check "
            "that the benchmarks ran at the baseline's scale"
        )
        return 2
    print(f"\nOK: {total_compared} record(s) within tolerance, none regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
