"""P5 — multiprocess candidate-slab scoring: scaling over worker counts.

The parallel execution layer (:mod:`repro.parallel`) shards every candidate
slab of the derandomized seed search across worker processes: the
deterministic planner splits the slab into per-worker sub-slabs, each worker
scores its shard through the same batched evaluator (shipped once per
level), and the parent reassembles the cost vectors in candidate order —
so outcomes are bit-identical for every worker count.

This benchmark drives the heaviest selection shape — the
conditional-expectation chunk sweep on an ``n >= 2000`` instance, where each
chunk scores a (candidates x completions) slab of over a hundred pairs —
with ``workers = 1 / 2 / 4``, plus a sharded FIRST_FEASIBLE fixed-budget
scan, asserting

* identical selection outcomes (seeds, cost, evaluations, rounds) across
  all worker counts, always,
* a wall-clock speedup at 4 workers when the host actually has the cores
  (>= 1.5x with 4+ CPUs at the realistic scales; relaxed on 2-3 CPUs and
  waived on a single CPU, where a multiprocess speedup is physically
  impossible — the JSON records carry the CPU count so the CI gate only
  compares like with like), and
* ``workers > 1`` is **never meaningfully slower** than ``workers = 1`` at
  any benchmarked slab size, on every host including single-CPU ones:
  the adaptive engagement floor keeps sub-break-even slabs (and whole
  coreless hosts) on the in-process path, so the worst case is noise, not
  IPC overhead.  The floor is ``BENCH_P5_NEVER_SLOWER_FLOOR`` (default
  0.75x, i.e. at most ~33% slower, absorbing timer jitter on loaded CI).

CPU counting is affinity-aware (:func:`repro.parallel.executor.effective_cpu_count`):
on cgroup-pinned runners ``os.cpu_count()`` reports the host's cores and
would arm the speedup gate on hosts that cannot possibly pass it.  When
fewer than 2 usable CPUs are detected, every emitted record carries
``"gate": false`` — a single-CPU run must never become a regression
baseline (the committed baselines are what make the CI gate non-vacuous;
``check_regression.py`` refuses P5 baselines recorded on one CPU).

Results are written to ``BENCH_p5.json``.
"""

from __future__ import annotations

import os
import time

from bench_json import emit_bench_json

from repro.core.classification import partition_cost_function
from repro.core.params import ColorReduceParameters
from repro.core.partition import Partition
from repro.derand.conditional_expectation import HashPairSelector, SelectionStrategy
from repro.errors import DerandomizationError
from repro.graph.generators import erdos_renyi
from repro.graph.palettes import PaletteAssignment
from repro.parallel import effective_cpu_count, get_executor, shutdown_executors

_SCALES = {
    # (num nodes, average degree, timing rounds, scan candidate budget)
    "smoke": (600, 20, 3, 192),
    "default": (2000, 30, 2, 256),
    "full": (3000, 40, 2, 256),
}

_WORKER_COUNTS = (1, 2, 4)


def _required_speedup(scale: str, cpus: int) -> float:
    """The 4-worker speedup this host must show, or 0.0 when waived.

    ``BENCH_P5_REQUIRED_SPEEDUP`` overrides the 4+-CPU floor — an
    operational escape hatch for CI hosts whose effective parallelism
    belies their advertised core count (shared vCPUs), tunable without a
    code change.  Identity assertions are never waived.
    """
    if scale == "smoke" or cpus < 2:
        # Smoke instances are too small to amortise IPC; a single CPU
        # cannot speed anything up by adding processes.
        return 0.0
    if cpus < 4:
        return 1.1
    return float(os.environ.get("BENCH_P5_REQUIRED_SPEEDUP", "1.5"))


def _setup(scale: str):
    num_nodes, avg_degree, rounds, budget = _SCALES[scale]
    graph = erdos_renyi(num_nodes, avg_degree / num_nodes, seed=42)
    palettes = PaletteAssignment.delta_plus_one(graph)
    params = ColorReduceParameters.scaled(num_bins=4)
    ell = max(float(graph.max_degree()), 2.0)
    family1, family2 = Partition(params).build_families(
        graph, palettes, ell, graph.num_nodes
    )
    return graph, palettes, params, ell, family1, family2, rounds, budget


def _ce_sweep(setup, workers):
    """One full conditional-expectation search; returns (seconds, outcome)."""
    graph, palettes, params, ell, family1, family2, _, _ = setup
    # Fresh evaluator per run so each measurement pays the full real cost
    # of its path, including shipping the evaluator to the pool once.
    cost = partition_cost_function(graph, palettes, params, ell, graph.num_nodes)
    selector = HashPairSelector(
        family1,
        family2,
        strategy=SelectionStrategy.CONDITIONAL_EXPECTATION,
        chunk_bits=6,
        completion_samples=2,
        exact_completion_bits=4,
        candidate_salt=7,
        parallel_workers=workers,
    )
    started = time.perf_counter()
    outcome = selector.select(cost, target_bound=None)
    return time.perf_counter() - started, outcome


def _feasibility_scan(setup, workers):
    """FIRST_FEASIBLE over a fixed budget (infeasible bound, wide batches)."""
    graph, palettes, params, ell, family1, family2, _, budget = setup
    cost = partition_cost_function(graph, palettes, params, ell, graph.num_nodes)
    selector = HashPairSelector(
        family1,
        family2,
        strategy=SelectionStrategy.FIRST_FEASIBLE,
        batch_size=64,
        max_candidates=budget,
        candidate_salt=7,
        parallel_workers=workers,
    )
    started = time.perf_counter()
    try:
        selector.select(cost, target_bound=-1.0)
    except DerandomizationError:
        pass
    return time.perf_counter() - started


def _best_ce(setup, workers, rounds):
    best_seconds, outcome = float("inf"), None
    for _ in range(rounds):
        seconds, result = _ce_sweep(setup, workers)
        if seconds < best_seconds:
            best_seconds, outcome = seconds, result
    return best_seconds, outcome


def _best_scan(setup, workers, rounds):
    return min(_feasibility_scan(setup, workers) for _ in range(rounds))


def test_p5_parallel_selection(benchmark, experiment_scale):
    setup = _setup(experiment_scale)
    graph = setup[0]
    rounds = setup[6]
    cpus = effective_cpu_count()
    # A single-CPU run can never witness a parallel speedup, so none of its
    # records may serve as a regression baseline — check_regression.py
    # fails loudly on a gate-armed cpus==1 P5 baseline.
    gated = cpus >= 2

    # Spawn the pools and warm both paths once before timing (process
    # startup and ufunc init are one-offs, not part of either algorithm;
    # evaluator shipping is NOT warmed — each timed run pays it).
    for workers in _WORKER_COUNTS[1:]:
        get_executor(workers)
    _ce_sweep(setup, 1)
    _ce_sweep(setup, _WORKER_COUNTS[-1])

    ce_seconds = {}
    ce_outcomes = {}
    for workers in _WORKER_COUNTS:
        ce_seconds[workers], ce_outcomes[workers] = _best_ce(setup, workers, rounds)

    scan_seconds = {
        workers: _best_scan(setup, workers, rounds)
        for workers in (1, _WORKER_COUNTS[-1])
    }

    base = ce_outcomes[1]
    identical = all(
        outcome.h1.seed == base.h1.seed
        and outcome.h2.seed == base.h2.seed
        and outcome.cost == base.cost
        and outcome.evaluations == base.evaluations
        and outcome.rounds_charged == base.rounds_charged
        for outcome in ce_outcomes.values()
    )

    speedup_2w = ce_seconds[1] / ce_seconds[2]
    speedup_4w = ce_seconds[1] / ce_seconds[4]
    scan_speedup = scan_seconds[1] / scan_seconds[_WORKER_COUNTS[-1]]

    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["ce_speedup_2w"] = round(speedup_2w, 2)
    benchmark.extra_info["ce_speedup_4w"] = round(speedup_4w, 2)
    benchmark.extra_info["scan_speedup_4w"] = round(scan_speedup, 2)
    benchmark.extra_info["identical_selection"] = identical
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    emit_bench_json(
        "p5",
        [
            {
                "op": "ce-sweep-2workers",
                "n": graph.num_nodes,
                "scalar_s": round(ce_seconds[1], 5),
                "batch_s": round(ce_seconds[2], 5),
                "speedup": round(speedup_2w, 2),
                "cpus": cpus,
                "gate": gated,
            },
            {
                "op": "ce-sweep-4workers",
                "n": graph.num_nodes,
                "scalar_s": round(ce_seconds[1], 5),
                "batch_s": round(ce_seconds[4], 5),
                "speedup": round(speedup_4w, 2),
                "cpus": cpus,
                "gate": gated,
            },
            {
                "op": "first-feasible-4workers",
                "n": graph.num_nodes,
                "scalar_s": round(scan_seconds[1], 5),
                "batch_s": round(scan_seconds[_WORKER_COUNTS[-1]], 5),
                "speedup": round(scan_speedup, 2),
                "cpus": cpus,
                "gate": False,
            },
        ],
    )

    print()
    print("P5: multiprocess candidate-slab scoring (workers vs in-process)")
    print(
        f"  instance: n={graph.num_nodes} m={graph.num_edges} cpus={cpus} "
        f"(1-worker baseline is the in-process path)"
    )
    for workers in _WORKER_COUNTS:
        speedup = ce_seconds[1] / ce_seconds[workers]
        print(
            f"  CE sweep, {workers} worker(s):   {ce_seconds[workers]:8.3f}s   "
            f"speedup {speedup:5.2f}x"
        )
    print(
        f"  FIRST_FEASIBLE scan, {_WORKER_COUNTS[-1]} workers: "
        f"{scan_seconds[_WORKER_COUNTS[-1]]:8.3f}s vs {scan_seconds[1]:8.3f}s "
        f"({scan_speedup:5.2f}x)"
    )
    print(f"  identical selection outcomes: {identical}")

    shutdown_executors()

    assert identical, (
        "parallel selection must match the in-process path bit-for-bit"
    )
    required = _required_speedup(experiment_scale, cpus)
    if required > 0.0:
        assert speedup_4w >= required, (
            f"conditional-expectation sweep only {speedup_4w:.2f}x faster with "
            f"4 workers on {cpus} CPUs (required {required}x)"
        )
    else:
        print(
            f"  (speedup assertion waived: scale={experiment_scale!r}, cpus={cpus})"
        )
    # Never waived, at any scale or CPU count: engaging workers must not
    # cost wall-clock.  The adaptive floor keeps sub-break-even slabs (and
    # coreless hosts) in-process, so the worst case is timer noise — the
    # floor absorbs that, nothing more.
    never_slower_floor = float(
        os.environ.get("BENCH_P5_NEVER_SLOWER_FLOOR", "0.75")
    )
    all_speedups = {
        f"ce-{workers}w": ce_seconds[1] / ce_seconds[workers]
        for workers in _WORKER_COUNTS[1:]
    }
    all_speedups["scan-4w"] = scan_speedup
    worst_case = min(all_speedups, key=all_speedups.get)
    assert all_speedups[worst_case] >= never_slower_floor, (
        f"workers > 1 slower than in-process: {worst_case} at "
        f"{all_speedups[worst_case]:.2f}x on {cpus} CPU(s) "
        f"(floor {never_slower_floor}x)"
    )
