"""A4 — ablation: the local-collection threshold (base-case constant).

Headline numbers are also emitted as ``BENCH_a4.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a4_collect_threshold


def test_a4_collect_threshold(benchmark, experiment_scale):
    result = run_once(benchmark, run_a4_collect_threshold, experiment_scale)
    emit_bench_json(
        "a4",
        [
            {
                "op": "collect-threshold-ablation",
                "scale": experiment_scale,
                "max_depth": result.headline["max_depth"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    assert result.headline["max_depth"] <= 9
