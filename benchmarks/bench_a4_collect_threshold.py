"""A4 — ablation: the local-collection threshold (base-case constant)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a4_collect_threshold


def test_a4_collect_threshold(benchmark, experiment_scale):
    result = run_once(benchmark, run_a4_collect_threshold, experiment_scale)
    assert result.headline["max_depth"] <= 9
