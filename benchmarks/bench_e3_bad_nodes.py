"""E3 — Lemma 3.9 / Corollary 3.10: bad bins, bad nodes and the size of G0.

Headline numbers are also emitted as ``BENCH_e3.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e3_bad_nodes


def test_e3_bad_nodes(benchmark, experiment_scale):
    result = run_once(benchmark, run_e3_bad_nodes, experiment_scale)
    emit_bench_json(
        "e3",
        [
            {
                "op": "bad-nodes",
                "scale": experiment_scale,
                "max_deterministic_bad_bins": result.headline[
                    "max_deterministic_bad_bins"
                ],
                "max_g0_over_n": result.headline["max_g0_over_n"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # Lemma 3.9: the derandomized selection never produces a bad bin.
    assert result.headline["max_deterministic_bad_bins"] == 0
    # Corollary 3.10: the bad graph G0 has size O(n) (constant factor 4 here).
    assert result.headline["max_g0_over_n"] <= 4.0
