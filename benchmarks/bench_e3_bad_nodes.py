"""E3 — Lemma 3.9 / Corollary 3.10: bad bins, bad nodes and the size of G0."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import run_e3_bad_nodes


def test_e3_bad_nodes(benchmark, experiment_scale):
    result = run_once(benchmark, run_e3_bad_nodes, experiment_scale)
    # Lemma 3.9: the derandomized selection never produces a bad bin.
    assert result.headline["max_deterministic_bad_bins"] == 0
    # Corollary 3.10: the bad graph G0 has size O(n) (constant factor 4 here).
    assert result.headline["max_g0_over_n"] <= 4.0
