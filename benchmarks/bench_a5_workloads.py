"""A5 — named workload sweep across both algorithms.

Headline numbers are also emitted as ``BENCH_a5.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a5_workload_sweep


def test_a5_workloads(benchmark, experiment_scale):
    result = run_once(benchmark, run_a5_workload_sweep, experiment_scale)
    emit_bench_json(
        "a5",
        [
            {
                "op": "workload-sweep",
                "scale": experiment_scale,
                "workloads": result.headline["workloads"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    assert result.headline["workloads"] >= 5
