"""A5 — named workload sweep across both algorithms."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a5_workload_sweep


def test_a5_workloads(benchmark, experiment_scale):
    result = run_once(benchmark, run_a5_workload_sweep, experiment_scale)
    assert result.headline["workloads"] >= 5
