"""A2 — ablation: hash-pair selection strategies (Section 2.4 machinery).

Headline numbers are also emitted as ``BENCH_a2.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a2_selection_strategy


def test_a2_selection_strategy(benchmark, experiment_scale):
    result = run_once(benchmark, run_a2_selection_strategy, experiment_scale)
    emit_bench_json(
        "a2",
        [
            {
                "op": "selection-strategy-ablation",
                "scale": experiment_scale,
                "guaranteed_strategies_ok": result.headline[
                    "guaranteed_strategies_ok"
                ],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    assert result.headline["guaranteed_strategies_ok"] == 1.0
