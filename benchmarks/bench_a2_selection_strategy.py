"""A2 — ablation: hash-pair selection strategies (Section 2.4 machinery)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_a2_selection_strategy


def test_a2_selection_strategy(benchmark, experiment_scale):
    result = run_once(benchmark, run_a2_selection_strategy, experiment_scale)
    assert result.headline["guaranteed_strategies_ok"] == 1.0
