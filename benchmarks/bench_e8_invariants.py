"""E8 — Lemma 3.2 / Corollary 3.3: the palette/degree invariant.

Headline numbers are also emitted as ``BENCH_e8.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e8_invariants


def test_e8_invariants(benchmark, experiment_scale):
    result = run_once(benchmark, run_e8_invariants, experiment_scale)
    emit_bench_json(
        "e8",
        [
            {
                "op": "palette-degree-invariant",
                "scale": experiment_scale,
                "total_violations": result.headline["total_violations"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # The correctness condition d'(v) < p'(v) is never violated at any level.
    assert result.headline["total_violations"] == 0
