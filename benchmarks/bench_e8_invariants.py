"""E8 — Lemma 3.2 / Corollary 3.3: the palette/degree invariant."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import run_e8_invariants


def test_e8_invariants(benchmark, experiment_scale):
    result = run_once(benchmark, run_e8_invariants, experiment_scale)
    # The correctness condition d'(v) < p'(v) is never violated at any level.
    assert result.headline["total_violations"] == 0
