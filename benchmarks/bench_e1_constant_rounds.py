"""E1 — Theorems 1.1/1.2: constant-round (Δ+1)-list coloring.

Regenerates the rounds-vs-n table: at a fixed degree the round count of the
deterministic algorithm must not grow with ``n``, and the recursion depth
must stay within the paper's bound of 9.

The headline numbers are also emitted as ``BENCH_e1.json`` (``gate:
false`` — they are claims about the algorithm, not speedups, and the
assertions below gate them directly); ``check_regression.py --update``
inventories the file alongside the ``BENCH_p*`` perf records.
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e1_constant_rounds


def test_e1_constant_rounds(benchmark, experiment_scale):
    result = run_once(benchmark, run_e1_constant_rounds, experiment_scale)
    emit_bench_json(
        "e1",
        [
            {
                "op": "constant-rounds",
                "scale": experiment_scale,
                "max_depth": result.headline["max_depth"],
                "max_rounds": result.headline["max_rounds"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    assert result.headline["max_depth"] <= 9
    # Constant-round claim: the spread between the largest and smallest round
    # count across the n-sweep is bounded by the per-level constant times the
    # 2^9 envelope, not by anything growing with n.
    assert result.headline["max_rounds"] <= 2**9 * 8
