"""P4 — throughput of the ``ColorReduce`` endgame: palette update + greedy.

After a partition level's color bins are colored, ``ColorReduce`` still has
to (a) restrict the parent palettes to the leftover-bin / bad-graph /
capacity-piece nodes and prune the colors their colored neighbors already
took (the paper's "update color palettes" steps), and (b) greedily
list-color the collected instances on one machine.  Before this PR both ran
as per-neighbor dict/set loops and a per-node ``sorted(palette)`` sweep —
the last scalar territory of the pipeline.  The array-backed palette store
replaces them with :meth:`PaletteAssignment.subset_updated` /
:meth:`PaletteAssignment.remove_colors_used_by_neighbors_batch` (one CSR
gather + one membership-table mark + one masked compaction) and the array
sweep of :func:`repro.core.local_coloring.greedy_list_coloring`
(``use_batch``: blocked sets off pre-filtered CSR runs, first-free picks
over the store's sorted slices).

The instance is a preferential-attachment graph with ``{0..Δ}`` palettes —
the heavy-tailed shape where the scalar endgame hurts most (every palette
carries the hub-driven Δ+1 colors, and the reference sweep re-sorts one
per node).  The benchmark stages one real partition level (hash selection,
batched extraction — the PR 1–3 state both paths share), colors the color
bins, then times for both paths

* the leftover-bin palette update (restrict + prune against the parent
  graph and the bins' coloring), and
* the greedy coloring of the instance as the pipeline ships it (a lazy
  CSR child),

asserting a >= 3x *combined* speedup at the default scale (n = 2000) and
bit-identical outputs — same ``removed`` count, same pruned palette sets,
same coloring.  Results are also written to ``BENCH_p4.json``.
"""

from __future__ import annotations

import time

from bench_json import emit_bench_json

from repro.core.local_coloring import GREEDY_ARRAY_CUTOVER_NODES, greedy_list_coloring
from repro.core.params import ColorReduceParameters
from repro.core.partition import Partition
from repro.graph.generators import erdos_renyi, power_law
from repro.graph.palettes import PaletteAssignment

_SCALES = {
    # (num nodes, attachment, timing rounds)
    "smoke": (600, 10, 5),
    "default": (2000, 15, 7),
    "full": (4000, 15, 7),
}

#: Required combined speedups per scale.  At smoke size the fixed kernel
#: overheads (store build, flattening, argsort) are a large fraction of the
#: tiny scalar time, so only the realistic scales demand the full 3x.
_REQUIRED_SPEEDUP = {"smoke": 1.2, "default": 3.0, "full": 3.0}


def _setup(scale: str):
    num_nodes, attachment, rounds = _SCALES[scale]
    graph = power_law(num_nodes, attachment=attachment, seed=42)
    palettes = PaletteAssignment.delta_plus_one(graph)
    params = ColorReduceParameters.scaled(num_bins=4)
    ell = max(float(graph.max_degree()), 2.0)
    # One real partition level, exactly as the batched pipeline stages it:
    # the selection warms the CSR view and the shared palette store, the
    # color bins are colored, and the leftover bin awaits its update.
    palettes.store()
    partition = Partition(params).run(graph, palettes, ell, num_nodes, salt=1)
    coloring = {}
    for bin_instance in partition.color_bins:
        if not bin_instance.is_empty:
            coloring.update(
                greedy_list_coloring(
                    bin_instance.graph, bin_instance.palettes, use_batch=True
                )
            )
    leftover_nodes = partition.leftover.graph.nodes()
    # The scalar reference state (PR 3): palettes as plain Python sets, the
    # instance a lazy CSR child (batched extraction ships them that way).
    sets_palettes = palettes.copy()
    sets_palettes._palettes  # materialise the sets ...
    sets_palettes._store = None  # ... and drop the array store
    lazy_instance = graph.induced_subgraph(graph.nodes(), use_csr=True)
    return (
        graph,
        palettes,
        sets_palettes,
        coloring,
        leftover_nodes,
        lazy_instance,
        rounds,
    )


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _small_instance_cutover():
    """Validate the greedy small-instance cutover threshold.

    Builds a CSR-warm, store-warm instance *below*
    :data:`GREEDY_ARRAY_CUTOVER_NODES` (the shape of a deep-recursion
    leaf), times both greedy paths, and checks that (a) auto mode takes
    the scalar loop there, (b) all three modes agree bit-for-bit, and
    (c) the scalar loop is not meaningfully slower than the array sweep —
    i.e. skipping the sweep's fixed setup on leaves is justified.
    Returns ``(scalar_s, array_s, identical)``.
    """
    num_nodes = max(4, GREEDY_ARRAY_CUTOVER_NODES - 4)
    graph = erdos_renyi(num_nodes, 0.3, seed=9)
    palettes = PaletteAssignment.delta_plus_one(graph)
    palettes.store()
    leaf = graph.induced_subgraph(graph.nodes(), use_csr=True)
    leaf.csr()

    def scalar():
        return greedy_list_coloring(leaf, palettes, use_batch=False)

    def array():
        return greedy_list_coloring(leaf, palettes, use_batch=True)

    scalar(), array()  # warm interpreter/ufunc one-offs
    scalar_seconds = _best_of(scalar, 40)
    array_seconds = _best_of(array, 40)
    auto = greedy_list_coloring(leaf, palettes)  # cutover: scalar path
    identical = auto == scalar() == array()
    return scalar_seconds, array_seconds, identical


def test_p4_palette_endgame(benchmark, experiment_scale):
    (
        graph,
        palettes,
        sets_palettes,
        coloring,
        leftover_nodes,
        lazy_instance,
        rounds,
    ) = _setup(experiment_scale)

    # --- the two endgame operations, scalar vs batched ---------------------
    def scalar_update():
        restricted = sets_palettes.subset(leftover_nodes)
        return restricted, restricted.remove_colors_used_by_neighbors(graph, coloring)

    def batched_update():
        return palettes.subset_updated(leftover_nodes, graph, coloring)

    def scalar_greedy():
        return greedy_list_coloring(lazy_instance, sets_palettes, use_batch=False)

    def batched_greedy():
        return greedy_list_coloring(lazy_instance, palettes, use_batch=True)

    # Warm both paths once (interpreter/ufunc one-offs are not part of
    # either algorithm).
    scalar_update(), batched_update(), scalar_greedy(), batched_greedy()

    scalar_update_seconds = _best_of(scalar_update, rounds)
    scalar_greedy_seconds = _best_of(scalar_greedy, rounds)
    batched_update_seconds = _best_of(batched_update, rounds)
    batched_greedy_seconds = benchmark.pedantic(
        _best_of, args=(batched_greedy, rounds), rounds=1, iterations=1
    )
    scalar_seconds = scalar_update_seconds + scalar_greedy_seconds
    batched_seconds = batched_update_seconds + batched_greedy_seconds
    combined = scalar_seconds / batched_seconds
    update_speedup = scalar_update_seconds / batched_update_seconds
    greedy_speedup = scalar_greedy_seconds / batched_greedy_seconds

    # --- equivalence: identical removed counts, palettes and colorings -----
    scalar_restricted, scalar_removed = scalar_update()
    batched_restricted, batched_removed = batched_update()
    identical = (
        scalar_removed == batched_removed
        and scalar_restricted.nodes() == batched_restricted.nodes()
        and all(
            scalar_restricted.palette(node) == batched_restricted.palette(node)
            for node in leftover_nodes
        )
        and scalar_greedy() == batched_greedy()
    )

    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["max_degree"] = graph.max_degree()
    benchmark.extra_info["palette_entries"] = palettes.total_size()
    benchmark.extra_info["update_speedup"] = round(update_speedup, 2)
    benchmark.extra_info["greedy_speedup"] = round(greedy_speedup, 2)
    benchmark.extra_info["combined_speedup"] = round(combined, 2)
    benchmark.extra_info["identical_outputs"] = identical

    # --- small-instance cutover (deep-recursion leaves) --------------------
    small_scalar_s, small_array_s, small_identical = _small_instance_cutover()
    cutover_ratio = small_scalar_s / small_array_s
    benchmark.extra_info["cutover_nodes"] = GREEDY_ARRAY_CUTOVER_NODES
    benchmark.extra_info["cutover_scalar_vs_array"] = round(cutover_ratio, 2)

    emit_bench_json(
        "p4",
        [
            {
                "op": "palette-update",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_update_seconds, 5),
                "batch_s": round(batched_update_seconds, 5),
                "speedup": round(update_speedup, 2),
            },
            {
                "op": "greedy-coloring",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_greedy_seconds, 5),
                "batch_s": round(batched_greedy_seconds, 5),
                "speedup": round(greedy_speedup, 2),
            },
            {
                "op": "endgame-combined",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_seconds, 5),
                "batch_s": round(batched_seconds, 5),
                "speedup": round(combined, 2),
            },
            # Sub-threshold leaf: "speedup" < 1 documents that the array
            # sweep does NOT pay below the cutover — why auto mode goes
            # scalar there.  Micro-timings; excluded from the CI gate.
            {
                "op": "greedy-small-cutover",
                "n": max(4, GREEDY_ARRAY_CUTOVER_NODES - 4),
                "scalar_s": round(small_scalar_s, 7),
                "batch_s": round(small_array_s, 7),
                "speedup": round(small_array_s / small_scalar_s, 2),
                "gate": False,
            },
        ],
    )

    print()
    print("P4: ColorReduce palette endgame (batched vs scalar)")
    print(
        f"  instance: n={graph.num_nodes} m={graph.num_edges} "
        f"max degree={graph.max_degree()} palette entries={palettes.total_size()}"
    )
    print(
        f"  palette update: scalar {scalar_update_seconds * 1e3:8.2f}ms  "
        f"batched {batched_update_seconds * 1e3:8.2f}ms   speedup {update_speedup:6.1f}x"
    )
    print(
        f"  greedy coloring: scalar {scalar_greedy_seconds * 1e3:8.2f}ms  "
        f"batched {batched_greedy_seconds * 1e3:8.2f}ms   speedup {greedy_speedup:6.1f}x"
    )
    print(f"  combined speedup: {combined:6.1f}x")
    print(f"  identical outputs: {identical}")
    print(
        f"  small-instance cutover (<{GREEDY_ARRAY_CUTOVER_NODES} nodes): "
        f"scalar {small_scalar_s * 1e6:6.1f}us vs array {small_array_s * 1e6:6.1f}us "
        f"(identical {small_identical})"
    )

    assert identical, "batched endgame must match the scalar reference exactly"
    assert small_identical, "greedy cutover paths must agree bit-for-bit"
    # The cutover is justified iff the array sweep buys nothing below the
    # threshold.  2x slack: these are ~20us best-of-40 measurements, and the
    # assertion should only trip when the array sweep is *clearly* faster on
    # sub-threshold leaves (meaning the threshold itself is wrong), not on
    # shared-runner jitter.
    assert small_scalar_s <= small_array_s * 2.0, (
        f"scalar greedy {small_scalar_s * 1e6:.1f}us much slower than array "
        f"{small_array_s * 1e6:.1f}us below the cutover — threshold "
        f"{GREEDY_ARRAY_CUTOVER_NODES} is set too high"
    )
    required = _REQUIRED_SPEEDUP[experiment_scale]
    assert combined >= required, (
        f"palette endgame only {combined:.1f}x faster than scalar "
        f"(required {required}x at scale {experiment_scale!r})"
    )
