"""P3 — throughput of the post-selection classify + palette-restriction step.

After the derandomized selection settles on a hash pair, ``Partition.run``
still has to (a) build the full :class:`PartitionClassification` for the
selected pair and (b) restrict every color bin's palettes to the colors
``h2`` maps to that bin.  PR 1/2 batched the *selection* and the *subgraph
extraction*; this step was the biggest Python loop left in the pipeline.
The batch layer replaces it with
:func:`repro.core.classification.classify_partition_batch` (one
``hash_many`` call, edge-endpoint compares and ``bincount`` scatters over
the CSR view) plus
:meth:`repro.graph.palettes.PaletteAssignment.restricted_by_bins` (one
``searchsorted`` gather over the flattened palette entries), sharing the
selected pair's color-bin arrays between the two.

This benchmark times the combined step for one real partition level (the
pair comes from an actual hash selection) for both paths, asserting

* a >= 3x speedup of the combined step at the default scale (n = 2000),
  and
* identical outputs — same classification, field by field, and the same
  restricted palette sets —

so future PRs have a recorded trajectory to regress against.
"""

from __future__ import annotations

import time

from repro.core.classification import (
    classify_partition,
    color_bin_map,
    partition_cost_function,
)
from repro.core.params import ColorReduceParameters
from repro.core.partition import Partition
from repro.graph.generators import erdos_renyi
from repro.graph.palettes import PaletteAssignment

_SCALES = {
    # (num nodes, average degree, timing rounds)
    "smoke": (600, 20, 5),
    "default": (2000, 30, 9),
    "full": (4000, 60, 9),
}

#: Required speedups per scale.  At smoke size the fixed kernel overheads
#: (universe sort, array setup) are a large fraction of the tiny scalar
#: time, so only the realistic scales demand the full 3x.
_REQUIRED_SPEEDUP = {"smoke": 1.2, "default": 3.0, "full": 3.0}


def _setup(scale: str):
    num_nodes, avg_degree, rounds = _SCALES[scale]
    graph = erdos_renyi(num_nodes, avg_degree / num_nodes, seed=42)
    palettes = PaletteAssignment.delta_plus_one(graph)
    params = ColorReduceParameters.scaled(num_bins=4)
    ell = max(float(graph.max_degree()), 2.0)
    # Exactly what Partition.run does: one evaluator drives the selection
    # and is then reused (static arrays warm) for the final classification.
    evaluator = partition_cost_function(graph, palettes, params, ell, graph.num_nodes)
    selection = Partition(params).select_hash_pair(
        graph, palettes, ell, graph.num_nodes, salt=1, cost=evaluator
    )
    graph.csr()  # warm, as it is after a real batched selection
    return graph, palettes, params, ell, selection, evaluator, rounds


def _scalar_step(graph, palettes, params, ell, h1, h2):
    """The pre-PR-3 path: per-node classification + per-color restriction."""
    classification = classify_partition(
        graph, palettes, h1, h2, params, ell, graph.num_nodes
    )
    num_color_bins = max(1, classification.num_bins - 1)
    colors_to_bins = color_bin_map(palettes, h2, num_color_bins)
    restricted = [
        palettes.restricted_to(
            classification.good_nodes_in_bin(bin_index),
            keep_color=lambda color, b=bin_index: colors_to_bins[color] == b,
        )
        for bin_index in range(num_color_bins)
    ]
    return classification, restricted


def _batched_step(evaluator, h1, h2):
    """The PR-3 path: one fused pass over the evaluator's warm arrays."""
    return evaluator.classify_selected(h1, h2)


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_p3_final_classification(benchmark, experiment_scale):
    graph, palettes, params, ell, selection, evaluator, rounds = _setup(experiment_scale)
    h1, h2 = selection.h1, selection.h2

    # Warm both paths once (interpreter/ufunc one-offs are not part of
    # either algorithm).
    _scalar_step(graph, palettes, params, ell, h1, h2)
    _batched_step(evaluator, h1, h2)

    scalar_seconds = _best_of(
        lambda: _scalar_step(graph, palettes, params, ell, h1, h2), rounds
    )
    batched_seconds = benchmark.pedantic(
        _best_of,
        args=(lambda: _batched_step(evaluator, h1, h2), rounds),
        rounds=1,
        iterations=1,
    )
    speedup = scalar_seconds / batched_seconds

    # --- equivalence: identical classification and restricted palettes ----
    scalar_cls, scalar_restricted = _scalar_step(graph, palettes, params, ell, h1, h2)
    batched_cls, batched_restricted = _batched_step(evaluator, h1, h2)
    identical = (
        batched_cls.bin_of_node == scalar_cls.bin_of_node
        and batched_cls.bad_nodes == scalar_cls.bad_nodes
        and batched_cls.bad_bins == scalar_cls.bad_bins
        and batched_cls.bin_sizes == scalar_cls.bin_sizes
        and batched_cls.nodes == scalar_cls.nodes
        and len(batched_restricted) == len(scalar_restricted)
        and all(
            actual.nodes() == expected.nodes()
            and all(
                actual.palette(node) == expected.palette(node)
                for node in expected.nodes()
            )
            for expected, actual in zip(scalar_restricted, batched_restricted)
        )
    )

    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["palette_entries"] = palettes.total_size()
    benchmark.extra_info["scalar_seconds"] = round(scalar_seconds, 5)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 5)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["identical_outputs"] = identical

    from bench_json import emit_bench_json

    emit_bench_json(
        "p3",
        [
            {
                "op": "classify-and-restrict",
                "n": graph.num_nodes,
                "scalar_s": round(scalar_seconds, 5),
                "batch_s": round(batched_seconds, 5),
                "speedup": round(speedup, 2),
            }
        ],
    )

    print()
    print("P3: post-selection classify + palette restriction (batched vs scalar)")
    print(
        f"  instance: n={graph.num_nodes} m={graph.num_edges} "
        f"palette entries={palettes.total_size()}"
    )
    print(
        f"  combined step: scalar {scalar_seconds * 1e3:8.2f}ms  "
        f"batched {batched_seconds * 1e3:8.2f}ms   speedup {speedup:6.1f}x"
    )
    print(f"  identical outputs: {identical}")

    assert identical, "batched classification must match the scalar reference exactly"
    required = _REQUIRED_SPEEDUP[experiment_scale]
    assert speedup >= required, (
        f"post-selection step only {speedup:.1f}x faster than scalar "
        f"(required {required}x at scale {experiment_scale!r})"
    )
