"""E4 — Section 1.3: constant rounds vs the logarithmic-round prior art."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import run_e4_baseline_rounds


def test_e4_baseline_rounds(benchmark, experiment_scale):
    result = run_once(benchmark, run_e4_baseline_rounds, experiment_scale)
    # Our recursion depth stays within the constant bound while the baselines
    # need at least a handful of logarithmic phases.
    assert result.headline["max_depth"] <= 9
    assert result.headline["max_trial_rounds"] >= 3
