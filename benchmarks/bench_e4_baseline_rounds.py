"""E4 — Section 1.3: constant rounds vs the logarithmic-round prior art.

Headline numbers are also emitted as ``BENCH_e4.json`` (``gate: false`` —
see ``bench_e1_constant_rounds.py``).
"""

from __future__ import annotations

from bench_json import emit_bench_json
from benchmarks.conftest import run_once
from repro.experiments import run_e4_baseline_rounds


def test_e4_baseline_rounds(benchmark, experiment_scale):
    result = run_once(benchmark, run_e4_baseline_rounds, experiment_scale)
    emit_bench_json(
        "e4",
        [
            {
                "op": "baseline-rounds",
                "scale": experiment_scale,
                "max_depth": result.headline["max_depth"],
                "max_trial_rounds": result.headline["max_trial_rounds"],
                "speedup": 0.0,
                "gate": False,
            }
        ],
    )
    # Our recursion depth stays within the constant bound while the baselines
    # need at least a handful of logarithmic phases.
    assert result.headline["max_depth"] <= 9
    assert result.headline["max_trial_rounds"] >= 3
