#!/usr/bin/env python3
"""(deg+1)-list coloring of a power-law graph in low-space MPC (Theorem 1.4).

Scenario: a social-network-like graph with a heavy-tailed degree
distribution must be colored on a cluster whose machines each hold far less
than the whole graph (the low-space MPC regime, s = O(n^ε)).  Plain
(Δ+1)-coloring would waste colors on the long tail of low-degree nodes, so
we solve the stronger (deg+1)-list coloring problem, exactly the setting of
Theorem 1.4.

The example prints the measured rounds against the paper's
O(log Δ + log log n) envelope and the simulator's space report.

Run with:  python examples/low_space_social_network.py
"""

from __future__ import annotations

from repro import LowSpaceColorReduce, LowSpaceParameters, generators
from repro.analysis.reporting import Table
from repro.analysis.theory import evaluate_round_bound
from repro.graph import PaletteAssignment
from repro.graph.validation import assert_valid_list_coloring, count_colors_used
from repro.mpc import MPCSimulator, low_space_regime


def main() -> None:
    table = Table(
        title="low-space MPC (deg+1)-list coloring on power-law graphs",
        columns=(
            "n",
            "Delta",
            "rounds",
            "MIS phases",
            "log Delta + log log n",
            "peak local words",
            "local budget",
            "colors used",
        ),
    )
    epsilon = 0.5
    for n, attachment in ((300, 4), (600, 8), (900, 16)):
        graph = generators.power_law(n, attachment=attachment, seed=11)
        palettes = PaletteAssignment.degree_plus_one(graph)
        simulator = MPCSimulator(low_space_regime(n, graph.num_edges, epsilon=epsilon))
        algorithm = LowSpaceColorReduce(
            params=LowSpaceParameters(epsilon=epsilon), simulator=simulator
        )
        result = algorithm.run(graph, palettes)
        assert_valid_list_coloring(graph, palettes, result.coloring)
        report = simulator.space_report()
        table.add_row(
            n,
            graph.max_degree(),
            result.rounds,
            result.total_mis_phases,
            round(evaluate_round_bound("O(log Δ + log log n)", graph.max_degree(), n), 1),
            report["peak_local_words"],
            report["local_budget_words"],
            count_colors_used(result.coloring),
        )
    print(table.render())
    print()
    print(
        "Note: every node uses a color from its own (deg+1)-list, so low-degree "
        "nodes in the tail receive small color indices even though Delta is large."
    )


if __name__ == "__main__":
    main()
