#!/usr/bin/env python3
"""Walkthrough of one derandomized Partition call (Algorithm 2, Section 2.4).

This example opens the hood on a single ``Partition(G, l)`` call:

1. build the c-wise independent hash families H1 (nodes) and H2 (colors),
2. estimate the expected Equation (1) cost over random pairs (Lemma 3.8),
3. deterministically select a pair meeting the Lemma 3.9 bound,
4. classify good/bad nodes and bins for the selected pair, and
5. show the resulting bins: sizes, degrees and palette sizes.

Run with:  python examples/derandomization_walkthrough.py
"""

from __future__ import annotations

from repro import ColorReduceParameters, generators
from repro.analysis.reporting import Table
from repro.core.classification import classify_partition, partition_cost_function
from repro.core.partition import Partition
from repro.derand.cost import empirical_expected_cost


def main() -> None:
    graph = generators.erdos_renyi(500, 0.15, seed=23)
    palettes = generators.shared_universe_palettes(graph, seed=24)
    params = ColorReduceParameters.scaled(num_bins=4)
    ell = float(graph.max_degree())
    n = graph.num_nodes
    print(f"instance: n={n}, m={graph.num_edges}, Delta={int(ell)}, bins={params.num_bins(ell)}")

    partition = Partition(params)
    family1, family2 = partition.build_families(graph, palettes, ell, n)
    print(
        f"hash families: H1 [{family1.domain_size}]->[{family1.range_size}] "
        f"({family1.seed_length_bits}-bit seed), "
        f"H2 [{family2.domain_size}]->[{family2.range_size}] "
        f"({family2.seed_length_bits}-bit seed)"
    )

    cost = partition_cost_function(graph, palettes, params, ell, n)
    expected = empirical_expected_cost(cost, family1, family2, num_samples=10, seed=1)
    target = params.cost_target(ell, n)
    print(f"sampled E[cost] over random pairs: {expected:.2f}  (selection target: {target:.2f})")

    result = partition.run(graph, palettes, ell, n)
    print(
        f"selected pair after {result.selection.evaluations} evaluation(s): "
        f"cost={result.selection.cost:.0f}, bad bins={result.num_bad_bins}, "
        f"bad nodes={result.num_bad_nodes}"
    )

    classification = classify_partition(
        graph, palettes, result.h1, result.h2, params, ell, n
    )
    bins_table = Table(
        title="resulting bins",
        columns=("bin", "role", "nodes", "edges", "max degree", "min palette"),
    )
    for bin_instance in result.color_bins:
        sizes = [
            bin_instance.palettes.palette_size(v) for v in bin_instance.graph.nodes()
        ]
        bins_table.add_row(
            bin_instance.bin_index,
            "color bin",
            bin_instance.graph.num_nodes,
            bin_instance.graph.num_edges,
            bin_instance.graph.max_degree(),
            min(sizes) if sizes else "-",
        )
    leftover = result.leftover
    bins_table.add_row(
        leftover.bin_index,
        "leftover (colored after)",
        leftover.graph.num_nodes,
        leftover.graph.num_edges,
        leftover.graph.max_degree(),
        "-",
    )
    bins_table.add_row(
        "-",
        "bad graph G0 (colored last)",
        result.bad_graph.num_nodes,
        result.bad_graph.num_edges,
        result.bad_graph.max_degree(),
        "-",
    )
    bins_table.add_note(
        f"bin size cap (Definition 3.1): {params.bin_cap(ell, n, n):.1f} nodes; "
        f"observed sizes {dict(sorted(classification.bin_sizes.items()))}"
    )
    print()
    print(bins_table.render())


if __name__ == "__main__":
    main()
