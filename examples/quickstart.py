#!/usr/bin/env python3
"""Quickstart: deterministic (Δ+1)-coloring in a simulated CONGESTED CLIQUE.

Builds a random graph, runs the paper's constant-round ColorReduce algorithm
(Theorem 1.1), validates the coloring, and prints the round/communication
breakdown the simulator recorded.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ColorReduce, PaletteAssignment, assert_proper_coloring, generators
from repro.analysis.metrics import collect_metrics


def main() -> None:
    # A moderately dense random graph: 600 nodes, average degree about 60.
    graph = generators.erdos_renyi(600, 0.1, seed=42)
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}, Delta={graph.max_degree()}")

    # Run the deterministic constant-round algorithm.  With no palettes given
    # it solves plain (Δ+1)-coloring (palettes {0..Δ} held implicitly).
    result = ColorReduce().run(graph)

    # The coloring is validated internally as well, but let's be explicit.
    assert_proper_coloring(graph, result.coloring)
    palettes = PaletteAssignment.delta_plus_one(graph)
    metrics = collect_metrics(graph, result)

    print(f"colors used:        {metrics.colors_used}  (budget Δ+1 = {graph.max_degree() + 1})")
    print(f"simulated rounds:   {result.rounds}")
    print(f"recursion depth:    {result.max_recursion_depth}  (paper bound: 9)")
    print(f"bad nodes deferred: {result.total_bad_nodes}")
    print(f"message words:      {result.ledger.message_words}")
    print()
    print("round breakdown by phase:")
    for label, cost in result.ledger.phases():
        print(f"  {label:25s} rounds={cost.rounds:<4d} words={cost.message_words}")
    # Every node's color is inside its palette.
    assert all(palettes.contains_color(node, color) for node, color in result.coloring.items())


if __name__ == "__main__":
    main()
