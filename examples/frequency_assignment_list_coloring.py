#!/usr/bin/env python3
"""(Δ+1)-list coloring of a dense interference graph (frequency assignment).

Scenario: transmitters in a dense deployment interfere with their neighbors
and each transmitter is only licensed for its own list of frequencies — a
classic (Δ+1)-list coloring instance, the general problem Theorem 1.1
settles.  Each transmitter's list is drawn from a large shared spectrum, so
the color universe is much larger than Δ+1 (this is why Algorithm 2's color
hash h2 needs domain [n^2]).

The example compares the deterministic constant-round algorithm with its
randomized ancestor and with the logarithmic-round baselines.

Run with:  python examples/frequency_assignment_list_coloring.py
"""

from __future__ import annotations

from repro import ColorReduce, generators
from repro.analysis.reporting import Table
from repro.baselines import (
    greedy_baseline,
    iterated_trial_coloring,
    mis_based_coloring,
    randomized_color_reduce,
)
from repro.graph.validation import assert_valid_list_coloring, count_colors_used


def main() -> None:
    # An interference graph: ring-of-cliques models dense cells connected in
    # a corridor, a common stress case for frequency assignment.
    graph = generators.ring_of_cliques(num_cliques=20, clique_size=18)
    # Licensed frequency lists: Δ+1 frequencies per transmitter out of a
    # shared spectrum twice that size.
    palettes = generators.shared_universe_palettes(graph, seed=7)
    print(
        f"interference graph: n={graph.num_nodes}, m={graph.num_edges}, "
        f"Delta={graph.max_degree()}, spectrum={len(palettes.color_universe())} frequencies"
    )

    table = Table(
        title="frequency assignment: deterministic constant-round vs baselines",
        columns=("algorithm", "rounds", "frequencies used", "notes"),
    )

    ours = ColorReduce().run(graph, palettes)
    assert_valid_list_coloring(graph, palettes, ours.coloring)
    table.add_row(
        "ColorReduce (deterministic)",
        ours.rounds,
        count_colors_used(ours.coloring),
        f"depth {ours.max_recursion_depth}, bad nodes {ours.total_bad_nodes}",
    )

    randomized = randomized_color_reduce(graph, palettes, seed=3)
    table.add_row(
        "ColorReduce (random seeds)",
        randomized.rounds,
        count_colors_used(randomized.coloring),
        f"bad nodes {randomized.total_bad_nodes} (no Lemma 3.9 guarantee)",
    )

    trial = iterated_trial_coloring(graph, palettes)
    table.add_row(
        "iterated trial coloring",
        trial.rounds,
        count_colors_used(trial.coloring),
        f"{trial.phases} logarithmic phases",
    )

    mis = mis_based_coloring(graph, palettes, seed=5)
    table.add_row(
        "Luby MIS reduction",
        mis.rounds,
        count_colors_used(mis.coloring),
        f"reduction graph with {mis.reduction_vertices} vertices",
    )

    sequential = greedy_baseline(graph, palettes)
    table.add_row("centralized greedy (reference)", "-", sequential.colors_used, "not distributed")

    print()
    print(table.render())


if __name__ == "__main__":
    main()
